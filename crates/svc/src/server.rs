//! The serving processes: per-shard RPC workers, the replication
//! record stream, the sync/transition orchestrators, the backup
//! receiver, hedge read workers, and the self-healing watchdog.
//!
//! ## Record stream
//!
//! Every replication and sync path speaks one wire protocol. The
//! receiver exports one region per stream, written only by the
//! sender:
//!
//! ```text
//! | rec 0 | … | rec S-1 | flag |
//! ```
//!
//! plus a single 4-byte *ack word* exported by the sender's side,
//! written only by the receiver. Records are numbered by a *stream
//! index* starting at 1 (independent of the store sequence each
//! record carries). The single flag word always holds the highest
//! stream index whose data has been deposited; VMMC's in-order
//! delivery lands the flag behind every record it covers
//! (flag-after-data), so one monotone word replaces per-record
//! doorbells. The receiver drains every record the flag admits, then
//! deposits the drained tail into the ack word — one ack per batch.
//!
//! The stream has two phases with different record layouts:
//!
//! * **Bulk** (snapshot + delta + cut): records are *packed*
//!   back-to-back from the start of the region — variable-length,
//!   word-padded — and shipped as one deliberate update per batch.
//!   SHRIMP's per-transfer overhead (two PIO accesses, DU engine and
//!   DMA setup, and the 30 MB/s EISA source read) makes small sends
//!   expensive, so batching is what keeps a migration's freeze window
//!   short (§4's amortization argument). Batches are stop-and-wait:
//!   the region is reused only after the previous batch's ack.
//! * **Live** (after the cut): each record occupies the fixed-size
//!   slot `(i-1) % S`, window-limited to `S` outstanding records so a
//!   slot is never overwritten before its ack.
//!
//! Three record kinds flow:
//!
//! * `KIND_PUT` / `KIND_DEL` — before the stream's *cut* they are
//!   snapshot entries (loaded at their original store sequence);
//!   after it they are live mutations applied in sequence order.
//! * `KIND_CUT` — closes the snapshot+delta phase, pinning the
//!   receiver's store at the source's exact apply sequence. It is
//!   always the last record of its batch.
//!
//! For live replication the sender holds the client's reply until the
//! record's ack arrives: **the commit point is the backup's ack**, so
//! every acknowledged write exists on the replica when the primary
//! dies. Bulk sync phases commit transitively through the cut
//! record's ack.
//!
//! ## Degradation and healing
//!
//! When a backup's daemon dies (or its channel can never be
//! established), the sender *demotes* the backup — clearing it from
//! the route before the degraded write is acknowledged, so neither
//! the watchdog nor a hedged read can ever trust a stale replica —
//! and keeps serving unreplicated. The watchdog then re-arms a fresh
//! backup via the snapshot sync path, restoring the single-failure
//! guarantee instead of PR 5's "demoted, never replaced" end state.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{BufferName, ExportOpts, ImportHandle, Vmmc, VmmcError};
use shrimp_mesh::NodeId;
use shrimp_node::{CacheMode, VAddr};
use shrimp_sim::{Ctx, Gate, RetryPolicy, SimChannel, SimHandle};
use shrimp_srpc::{SrpcServer, Val};

use crate::cluster::{Activation, BackupLink, SvcCluster};
use crate::seq_ge;
use crate::store::{Applied, Op, ShardStore, StoreEntry, MAX_KEY, MAX_VAL};

/// Replication record: `[seq u64][kind u32][klen u32][vlen u32][pad]`
/// then the fixed key and value slots.
const REC_HDR: usize = 24;
/// Whole record size — a multiple of the word size, so slot offsets
/// stay aligned for deliberate update.
pub(crate) const REC_BYTES: usize = REC_HDR + MAX_KEY + MAX_VAL;

const KIND_PUT: u32 = 1;
const KIND_DEL: u32 = 2;
/// Closes a snapshot+delta sync: `seq` is the source's exact apply
/// sequence at the cut; key and value are empty.
const KIND_CUT: u32 = 3;

/// Serve workers on the backup answering hedged reads — a small fixed
/// pool, since hedges are the retry tail, not the fast path.
const HEDGE_WORKERS: usize = 2;

/// Poll budget for the stream's flag and ack waits: a short poll burst
/// covering the common in-flight case, then the blocking half of the
/// polling/blocking switch (a landing packet wakes the waiter).
const ACK_POLLS: usize = 16;

/// Export/import rendezvous for one record stream.
#[derive(Debug, Default)]
pub(crate) struct ReplLink {
    /// `(node, name)` of the receiver's record+flag region.
    backup_pub: Mutex<Option<(NodeId, BufferName)>>,
    /// Opened once `backup_pub` is set.
    backup_ready: Gate,
    /// `(node, name)` of the sender's ack word.
    primary_pub: Mutex<Option<(NodeId, BufferName)>>,
    /// Opened once `primary_pub` is set.
    primary_ready: Gate,
}

/// Shared control word between a sync orchestrator and its receiver.
#[derive(Debug)]
pub(crate) struct GenCtl {
    /// The transition failed or was deposed; the receiver unwinds.
    abort: AtomicBool,
    /// The activation CAS succeeded; the receiver is the live backup.
    active: AtomicBool,
}

impl GenCtl {
    fn new(active: bool) -> GenCtl {
        GenCtl {
            abort: AtomicBool::new(false),
            active: AtomicBool::new(active),
        }
    }

    fn set_abort(&self) {
        self.abort.store(true, Ordering::SeqCst);
    }

    fn is_abort(&self) -> bool {
        self.abort.load(Ordering::SeqCst)
    }

    fn set_active(&self) {
        self.active.store(true, Ordering::SeqCst);
    }

    fn is_active(&self) -> bool {
        self.active.load(Ordering::SeqCst)
    }
}

/// One queued mutation from a serve worker to the live replicator.
pub(crate) struct ReplReq {
    /// The primary-assigned store sequence.
    pub(crate) seq: u64,
    /// The mutation itself (replayed verbatim on the backup).
    pub(crate) op: Op,
    /// Completion: `true` once the backup acked, `false` when
    /// replication degraded and the write is primary-only.
    pub(crate) done: SimChannel<bool>,
}

/// A transition the watchdog (or `spawn_shard`) hands to a sync
/// orchestrator process.
pub(crate) enum Transition {
    /// Epoch-0 bring-up of a chained shard: no snapshot (both stores
    /// are empty), just the cut record and then live replication.
    Initial {
        /// Backup node.
        bnode: usize,
        /// The epoch-0 replication channel the serve workers hold.
        repl: SimChannel<ReplReq>,
        /// Shared control with the construction-time receiver.
        ctl: Arc<GenCtl>,
        /// Rendezvous with the construction-time receiver.
        link: Arc<ReplLink>,
    },
    /// Arm a new backup for an unreplicated shard: snapshot + delta +
    /// cut, then flip to live replication under a bumped epoch.
    Rearm {
        /// Route epoch the claim was made under (activation CAS).
        expect_epoch: u32,
        /// Source primary node.
        from: usize,
        /// The new backup node.
        to: usize,
    },
    /// Planned handoff of the primary: snapshot + delta + cut, then
    /// the target serves under a bumped epoch (unreplicated until the
    /// watchdog re-arms).
    Migrate {
        /// Route epoch the claim was made under (activation CAS).
        expect_epoch: u32,
        /// Source primary node.
        from: usize,
        /// Target primary node.
        to: usize,
    },
}

/// Word-align a payload length (the hardware's transfer restriction).
fn pad4(n: usize) -> usize {
    n.div_ceil(4) * 4
}

/// Bytes one packed record occupies on the wire.
fn packed_len(klen: usize, vlen: usize) -> usize {
    REC_HDR + pad4(klen) + pad4(vlen)
}

/// Append one variable-length bulk record: the fixed header, then the
/// key and value each padded to a word boundary.
fn encode_packed_into(buf: &mut Vec<u8>, seq: u64, kind: u32, key: &[u8], val: &[u8]) {
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&kind.to_le_bytes());
    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
    buf.extend_from_slice(&(val.len() as u32).to_le_bytes());
    buf.extend_from_slice(&[0u8; REC_HDR - 20]);
    buf.extend_from_slice(key);
    buf.resize(buf.len() + (pad4(key.len()) - key.len()), 0);
    buf.extend_from_slice(val);
    buf.resize(buf.len() + (pad4(val.len()) - val.len()), 0);
}

/// One decoded packed record: bytes consumed off the front of the
/// batch, then sequence, kind, key, and value.
type DecodedPacked = (usize, u64, u32, Vec<u8>, Vec<u8>);

/// Parse one packed record from the front of `raw`; returns the bytes
/// consumed plus the fields. `None` on a malformed header.
fn decode_packed(raw: &[u8]) -> Option<DecodedPacked> {
    if raw.len() < REC_HDR {
        return None;
    }
    let seq = u64::from_le_bytes(raw[..8].try_into().ok()?);
    let kind = u32::from_le_bytes(raw[8..12].try_into().ok()?);
    let klen = u32::from_le_bytes(raw[12..16].try_into().ok()?) as usize;
    let vlen = u32::from_le_bytes(raw[16..20].try_into().ok()?) as usize;
    if klen > MAX_KEY || vlen > MAX_VAL || !matches!(kind, KIND_PUT | KIND_DEL | KIND_CUT) {
        return None;
    }
    let used = packed_len(klen, vlen);
    if raw.len() < used {
        return None;
    }
    let key = raw[REC_HDR..REC_HDR + klen].to_vec();
    let val = raw[REC_HDR + pad4(klen)..REC_HDR + pad4(klen) + vlen].to_vec();
    Some((used, seq, kind, key, val))
}

fn encode_record(seq: u64, kind: u32, key: &[u8], val: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; REC_BYTES];
    out[..8].copy_from_slice(&seq.to_le_bytes());
    out[8..12].copy_from_slice(&kind.to_le_bytes());
    out[12..16].copy_from_slice(&(key.len() as u32).to_le_bytes());
    out[16..20].copy_from_slice(&(val.len() as u32).to_le_bytes());
    out[REC_HDR..REC_HDR + key.len()].copy_from_slice(key);
    out[REC_HDR + MAX_KEY..REC_HDR + MAX_KEY + val.len()].copy_from_slice(val);
    out
}

/// Parse one record. `None` on a malformed header — the receiver
/// treats it as channel corruption and unwinds, rather than panicking
/// inside the kernel.
fn decode_record(raw: &[u8]) -> Option<(u64, u32, Vec<u8>, Vec<u8>)> {
    if raw.len() < REC_BYTES {
        return None;
    }
    let seq = u64::from_le_bytes(raw[..8].try_into().ok()?);
    let kind = u32::from_le_bytes(raw[8..12].try_into().ok()?);
    let klen = u32::from_le_bytes(raw[12..16].try_into().ok()?) as usize;
    let vlen = u32::from_le_bytes(raw[16..20].try_into().ok()?) as usize;
    if klen > MAX_KEY || vlen > MAX_VAL || !matches!(kind, KIND_PUT | KIND_DEL | KIND_CUT) {
        return None;
    }
    let key = raw[REC_HDR..REC_HDR + klen].to_vec();
    let val = raw[REC_HDR + MAX_KEY..REC_HDR + MAX_KEY + vlen].to_vec();
    Some((seq, kind, key, val))
}

/// [`Vmmc::export`] that rides out daemon outages with the policy's
/// backoff schedule, mirroring [`Vmmc::import_retry`].
fn export_retry(
    vmmc: &Vmmc,
    ctx: &Ctx,
    base: VAddr,
    len: usize,
    policy: RetryPolicy,
) -> Result<BufferName, VmmcError> {
    for attempt in 0..policy.attempts {
        match vmmc.export(ctx, base, len, ExportOpts::default()) {
            Err(VmmcError::DaemonUnavailable { .. }) => ctx.advance(policy.timeout(attempt)),
            other => return other,
        }
    }
    Err(VmmcError::Timeout {
        op: "svc export",
        waited: policy.total_budget(),
    })
}

/// Spawn every process serving one shard under the initial route.
pub(crate) fn spawn_shard(cluster: &Arc<SvcCluster>, shard: usize) {
    let route = cluster.route(shard);
    let h = cluster.system().sim().clone();
    let repl = cluster.initial_repl(shard);
    let store = cluster.authoritative_store(shard);
    spawn_serve_workers(cluster, &h, shard, 0, route.primary, store, repl.clone());
    if let Some(bnode) = route.backup {
        let bstore = cluster
            .backup_store(shard)
            .expect("a chained shard starts with a backup store");
        let promo = cluster
            .backup_promo(shard)
            .expect("a chained shard starts with a promotion channel");
        let link = Arc::new(ReplLink::default());
        let ctl = Arc::new(GenCtl::new(true));
        let gen = cluster.next_gen();
        spawn_receiver(
            cluster,
            &h,
            shard,
            bnode,
            Arc::clone(&link),
            Arc::clone(&bstore),
            promo,
            Arc::clone(&ctl),
            RecvMode::Backup,
            gen,
        );
        if cluster.config().hedge_reads {
            spawn_hedge_workers(cluster, &h, shard, 0, bnode, bstore);
        }
        spawn_transition(
            cluster,
            &h,
            shard,
            Transition::Initial {
                bnode,
                repl: repl.expect("a chained shard has a replication channel"),
                ctl,
                link,
            },
        );
    }
}

/// Truncate a fixed-slot opaque argument to its companion length.
fn unpad(bytes: &Val, len: &Val) -> Vec<u8> {
    match (bytes, len) {
        (Val::Bytes(b), Val::U32(n)) => b[..(*n as usize).min(b.len())].to_vec(),
        _ => Vec::new(),
    }
}

/// Apply a mutation as the primary and (when chained) hold the reply
/// until the backup acks.
///
/// Admission goes through the cluster's write gate: a frozen shard
/// (delta drain in progress) blocks the mutation in virtual time, and
/// a deposed generation gets `None` — the mutation is dropped, which
/// is sound because the serve fence abandons the reply of a deposed
/// epoch before it is sent.
fn mutate(
    ctx: &Ctx,
    cluster: &Arc<SvcCluster>,
    shard: usize,
    epoch: u32,
    store: &Mutex<ShardStore>,
    repl: &Option<SimChannel<ReplReq>>,
    op: Op,
) -> Option<Applied> {
    if !cluster.enter_write(ctx, shard, epoch) {
        return None;
    }
    // The sequence assignment and the replication enqueue happen with
    // no virtual-time operation between them, so records reach the
    // replicator in sequence order even with many concurrent workers.
    // The read-through slot publication rides inside the same store
    // lock acquisition: slot images are ordered exactly like store
    // sequences, and they land before the commit point (the backup's
    // ack), so the slot table is never behind an acknowledged write.
    let applied = {
        let mut g = store.lock();
        let a = g.apply_next(&op);
        if cluster.config().read_through {
            cluster.rt_publish(shard, epoch, &op, a.seq);
        }
        a
    };
    if let Some(tx) = repl {
        let done: SimChannel<bool> = SimChannel::new();
        tx.send(
            &ctx.handle(),
            ReplReq {
                seq: applied.seq,
                op,
                done: done.clone(),
            },
        );
        // Commit point: the backup applied the record (or replication
        // degraded and the route's backup was demoted first).
        done.recv(ctx);
    }
    cluster.exit_write(shard);
    Some(applied)
}

/// Spawn the pre-allocated RPC workers for `(shard, epoch)` on `node`.
/// Each worker is one concurrent client binding; it dies when the
/// node's daemon does (process death) or its epoch is deposed.
fn spawn_serve_workers(
    cluster: &Arc<SvcCluster>,
    h: &SimHandle,
    shard: usize,
    epoch: u32,
    node: usize,
    store: Arc<Mutex<ShardStore>>,
    repl: Option<SimChannel<ReplReq>>,
) {
    let service = SvcCluster::service(shard, epoch);
    if cluster.config().read_through {
        crate::read_through::spawn_rt_exporter(cluster, h, shard, epoch, node, Arc::clone(&store));
    }
    for w in 0..cluster.config().conns_per_shard {
        let cluster = Arc::clone(cluster);
        let store = Arc::clone(&store);
        let repl = repl.clone();
        let service = service.clone();
        let name = format!("svc-s{shard}-e{epoch}-w{w}");
        h.spawn(name.clone(), move |ctx| {
            let sys = Arc::clone(cluster.system());
            let birth = sys.daemon(node).restarts();
            let vmmc = sys.endpoint(node, name);
            let mut srv = SrpcServer::new(vmmc, cluster.iface());

            let cl = Arc::clone(&cluster);
            let st = Arc::clone(&store);
            let rp = repl.clone();
            srv.register(
                "put",
                Box::new(move |ctx, ins, out| {
                    let op = Op::Put {
                        key: unpad(&ins[0], &ins[1]),
                        val: unpad(&ins[2], &ins[3]),
                    };
                    let a = mutate(ctx, &cl, shard, epoch, &st, &rp, op);
                    let _ = out.set(ctx, "seq", &Val::U32(a.map_or(0, |a| a.seq as u32)));
                    let _ = out.set(ctx, "existed", &Val::Bool(a.is_some_and(|a| a.existed)));
                }),
            );
            let st = Arc::clone(&store);
            srv.register(
                "get",
                Box::new(move |ctx, ins, out| {
                    let key = unpad(&ins[0], &ins[1]);
                    let (seq, val) = {
                        let g = st.lock();
                        let (s, v) = g.get(&key);
                        (s, v.map(|v| v.to_vec()))
                    };
                    let _ = out.set(ctx, "seq", &Val::U32(seq as u32));
                    let _ = out.set(ctx, "found", &Val::Bool(val.is_some()));
                    let v = val.unwrap_or_default();
                    let _ = out.set(ctx, "vlen", &Val::U32(v.len() as u32));
                    let mut padded = v;
                    padded.resize(MAX_VAL, 0);
                    let _ = out.set(ctx, "val", &Val::Bytes(padded));
                }),
            );
            let cl = Arc::clone(&cluster);
            let st = Arc::clone(&store);
            let rp = repl.clone();
            srv.register(
                "del",
                Box::new(move |ctx, ins, out| {
                    let op = Op::Del {
                        key: unpad(&ins[0], &ins[1]),
                    };
                    let a = mutate(ctx, &cl, shard, epoch, &st, &rp, op);
                    let _ = out.set(ctx, "seq", &Val::U32(a.map_or(0, |a| a.seq as u32)));
                    let _ = out.set(ctx, "existed", &Val::Bool(a.is_some_and(|a| a.existed)));
                }),
            );

            loop {
                let mut conn = match srv.accept(ctx, cluster.directory(), &service) {
                    Ok(c) => c,
                    // Establishment fails only under daemon outage —
                    // the connecting client times out and re-routes.
                    Err(_) => return,
                };
                let fence = || {
                    let d = sys.daemon(node);
                    cluster.is_shutdown()
                        || d.is_down()
                        || d.restarts() != birth
                        || cluster.route(shard).epoch != epoch
                };
                let r = srv.serve_fenced(ctx, &mut conn, fence);
                if fence() || r.is_err() {
                    return;
                }
                // Graceful close: recycle the worker for another
                // binding under the same epoch.
            }
        });
    }
}

/// Spawn the backup-side read-only workers answering hedged reads for
/// `(shard, epoch)`. Serving the replica is safe because the commit
/// point of every acked write is the backup's ack — the replica's
/// entry for any acked key is at least as new. The fence additionally
/// requires the node to still be the route's backup, so a demoted
/// replica can never answer.
fn spawn_hedge_workers(
    cluster: &Arc<SvcCluster>,
    h: &SimHandle,
    shard: usize,
    epoch: u32,
    node: usize,
    store: Arc<Mutex<ShardStore>>,
) {
    let service = SvcCluster::hedge_service(shard, epoch);
    for w in 0..HEDGE_WORKERS {
        let cluster = Arc::clone(cluster);
        let store = Arc::clone(&store);
        let service = service.clone();
        let name = format!("svc-hedge-s{shard}-e{epoch}-w{w}");
        h.spawn(name.clone(), move |ctx| {
            let sys = Arc::clone(cluster.system());
            let birth = sys.daemon(node).restarts();
            let vmmc = sys.endpoint(node, name);
            let mut srv = SrpcServer::new(vmmc, cluster.iface());

            let st = Arc::clone(&store);
            srv.register(
                "get",
                Box::new(move |ctx, ins, out| {
                    let key = unpad(&ins[0], &ins[1]);
                    let (seq, val) = {
                        let g = st.lock();
                        let (s, v) = g.get(&key);
                        (s, v.map(|v| v.to_vec()))
                    };
                    let _ = out.set(ctx, "seq", &Val::U32(seq as u32));
                    let _ = out.set(ctx, "found", &Val::Bool(val.is_some()));
                    let v = val.unwrap_or_default();
                    let _ = out.set(ctx, "vlen", &Val::U32(v.len() as u32));
                    let mut padded = v;
                    padded.resize(MAX_VAL, 0);
                    let _ = out.set(ctx, "val", &Val::Bytes(padded));
                }),
            );
            // The hedge service is read-only; the client never routes
            // mutations here. Mutating methods answer with sequence 0
            // so a misdirected call is visibly a non-write.
            for m in ["put", "del"] {
                srv.register(
                    m,
                    Box::new(move |ctx, _ins, out| {
                        let _ = out.set(ctx, "seq", &Val::U32(0));
                        let _ = out.set(ctx, "existed", &Val::Bool(false));
                    }),
                );
            }

            loop {
                let mut conn = match srv.accept(ctx, cluster.directory(), &service) {
                    Ok(c) => c,
                    Err(_) => return,
                };
                let fence = || {
                    let d = sys.daemon(node);
                    let r = cluster.route(shard);
                    cluster.is_shutdown()
                        || d.is_down()
                        || d.restarts() != birth
                        || r.epoch != epoch
                        || r.backup != Some(node)
                };
                let r = srv.serve_fenced(ctx, &mut conn, fence);
                if fence() || r.is_err() {
                    return;
                }
            }
        });
    }
}

/// Bounded wait on the sender's ack word for `seq_ge(ack, need)`,
/// re-checking shutdown, the receiver's liveness, and this shard's
/// epoch every `watch_interval`. `false` means the stream must
/// degrade or abort.
#[allow(clippy::too_many_arguments)]
fn wait_ack(
    ctx: &Ctx,
    vmmc: &Vmmc,
    ack_va: VAddr,
    need: u32,
    cluster: &Arc<SvcCluster>,
    shard: usize,
    expect_epoch: u32,
    bnode: usize,
    birth: u64,
) -> bool {
    let interval = cluster.config().watch_interval;
    loop {
        match vmmc.wait_u32_deadline(ctx, ack_va, ACK_POLLS, ctx.now() + interval, |v| {
            seq_ge(v, need)
        }) {
            Ok(_) => return true,
            Err(VmmcError::Timeout { .. }) => {
                if cluster.is_shutdown() {
                    return false;
                }
                let d = cluster.system().daemon(bnode);
                if d.is_down() || d.restarts() != birth {
                    return false;
                }
                // Our generation was deposed (promotion, migration, or
                // a newer re-arm) — the receiver stopped acking for
                // us; stop streaming.
                if cluster.route(shard).epoch != expect_epoch {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
}

/// One bulk record queued for a packed batch.
type PackedRec<'a> = (u64, u32, &'a [u8], &'a [u8]);

/// Sender half of one record stream: staging buffers, the slot window,
/// and the monotonically growing stream index.
struct RecordSender<'a> {
    vmmc: &'a Vmmc,
    dst: ImportHandle,
    rec_stage: VAddr,
    batch_stage: VAddr,
    flag_stage: VAddr,
    ack_va: VAddr,
    slots: u64,
    /// Next stream index (starts at 1).
    idx: u64,
    shard: usize,
    bnode: usize,
    birth: u64,
}

impl RecordSender<'_> {
    /// Deposit one live record: slot flow control, record,
    /// flag-after-data, and the bounded ack wait that is the write's
    /// commit point.
    #[allow(clippy::too_many_arguments)]
    fn send(
        &mut self,
        ctx: &Ctx,
        cluster: &Arc<SvcCluster>,
        expect_epoch: u32,
        seq: u64,
        kind: u32,
        key: &[u8],
        val: &[u8],
    ) -> bool {
        let idx = self.idx;
        if idx > self.slots
            && !wait_ack(
                ctx,
                self.vmmc,
                self.ack_va,
                (idx - self.slots) as u32,
                cluster,
                self.shard,
                expect_epoch,
                self.bnode,
                self.birth,
            )
        {
            return false;
        }
        let rec = encode_record(seq, kind, key, val);
        if self.vmmc.proc_().write(ctx, self.rec_stage, &rec).is_err() {
            return false;
        }
        let slot = ((idx - 1) % self.slots) as usize;
        if self
            .vmmc
            .send(ctx, self.rec_stage, &self.dst, slot * REC_BYTES, REC_BYTES)
            .is_err()
        {
            return false;
        }
        if !self.raise_flag(ctx, idx) {
            return false;
        }
        self.idx += 1;
        wait_ack(
            ctx,
            self.vmmc,
            self.ack_va,
            idx as u32,
            cluster,
            self.shard,
            expect_epoch,
            self.bnode,
            self.birth,
        )
    }

    /// Advance the stream's single flag word to `tail` — in-order
    /// delivery lands it behind every record it covers.
    fn raise_flag(&mut self, ctx: &Ctx, tail: u64) -> bool {
        if self
            .vmmc
            .proc_()
            .write_u32(ctx, self.flag_stage, tail as u32)
            .is_err()
        {
            return false;
        }
        self.vmmc
            .send(
                ctx,
                self.flag_stage,
                &self.dst,
                self.slots as usize * REC_BYTES,
                4,
            )
            .is_ok()
    }

    /// Stream bulk records as packed batches: as many as fit in the
    /// slot region per deliberate update, one flag raise per batch.
    /// Batches are stop-and-wait — the region is reused only once the
    /// previous batch's ack has drained — and commit transitively
    /// through [`RecordSender::commit`] after the cut.
    fn send_packed(
        &mut self,
        ctx: &Ctx,
        cluster: &Arc<SvcCluster>,
        expect_epoch: u32,
        recs: &[PackedRec<'_>],
    ) -> bool {
        let cap = self.slots as usize * REC_BYTES;
        let mut i = 0;
        while i < recs.len() {
            let mut buf = Vec::with_capacity(cap);
            let mut n = 0u64;
            while i < recs.len() {
                let (seq, kind, key, val) = recs[i];
                if buf.len() + packed_len(key.len(), val.len()) > cap {
                    break;
                }
                encode_packed_into(&mut buf, seq, kind, key, val);
                i += 1;
                n += 1;
            }
            debug_assert!(n > 0, "one record always fits the slot region");
            if self.idx > 1 && !self.commit(ctx, cluster, expect_epoch) {
                return false;
            }
            if self
                .vmmc
                .proc_()
                .write(ctx, self.batch_stage, &buf)
                .is_err()
            {
                return false;
            }
            if self
                .vmmc
                .send(ctx, self.batch_stage, &self.dst, 0, buf.len())
                .is_err()
            {
                return false;
            }
            let tail = self.idx + n - 1;
            if !self.raise_flag(ctx, tail) {
                return false;
            }
            self.idx = tail + 1;
        }
        true
    }

    /// Wait until everything sent so far has been applied and acked —
    /// the bulk phases' commit point (for the sync, the cut's ack).
    fn commit(&mut self, ctx: &Ctx, cluster: &Arc<SvcCluster>, expect_epoch: u32) -> bool {
        self.idx <= 1
            || wait_ack(
                ctx,
                self.vmmc,
                self.ack_va,
                (self.idx - 1) as u32,
                cluster,
                self.shard,
                expect_epoch,
                self.bnode,
                self.birth,
            )
    }

    /// Stream one live mutation (commit = the client's ack gate).
    fn send_op(
        &mut self,
        ctx: &Ctx,
        cluster: &Arc<SvcCluster>,
        expect_epoch: u32,
        seq: u64,
        op: &Op,
    ) -> bool {
        let (kind, key, val): (u32, &[u8], &[u8]) = match op {
            Op::Put { key, val } => (KIND_PUT, key, val),
            Op::Del { key } => (KIND_DEL, key, &[]),
        };
        self.send(ctx, cluster, expect_epoch, seq, kind, key, val)
    }
}

/// Bulk records for one snapshot/delta entry list.
fn packed_recs(entries: &[StoreEntry]) -> Vec<PackedRec<'_>> {
    entries
        .iter()
        .map(|(key, seq, val)| match val {
            Some(v) => (*seq, KIND_PUT, key.as_slice(), v.as_slice()),
            None => (*seq, KIND_DEL, key.as_slice(), &[][..]),
        })
        .collect()
}

/// What the receiver does after the cut record.
enum RecvMode {
    /// Keep applying live records and watch for promotion (backup
    /// replica).
    Backup,
    /// Exit once the cut is acked (migration target — the orchestrator
    /// spawns the serve generation).
    Sink,
}

/// The receiver half of one record stream: exports the slot region,
/// applies records by phase (snapshot load → cut → live), and acks by
/// stream index.
#[allow(clippy::too_many_arguments)]
fn spawn_receiver(
    cluster: &Arc<SvcCluster>,
    h: &SimHandle,
    shard: usize,
    bnode: usize,
    link: Arc<ReplLink>,
    store: Arc<Mutex<ShardStore>>,
    promo: SimChannel<u32>,
    ctl: Arc<GenCtl>,
    mode: RecvMode,
    gen: usize,
) {
    let cluster = Arc::clone(cluster);
    let name = format!("svc-recv-s{shard}-g{gen}");
    h.spawn(name.clone(), move |ctx| {
        let vmmc = cluster.system().endpoint(bnode, name);
        let cfg = cluster.config().clone();
        let boot = RetryPolicy::bootstrap();
        let slots = cfg.repl_slots as usize;
        let total = slots * REC_BYTES + 4;
        let base = vmmc.proc_().alloc(total, CacheMode::WriteBack);

        let ack_dst: Option<ImportHandle> = (|| {
            let bufname = export_retry(&vmmc, ctx, base, total, boot).ok()?;
            *link.backup_pub.lock() = Some((vmmc.node_id(), bufname));
            link.backup_ready.open(&ctx.handle());
            let deadline = ctx.now() + boot.total_budget();
            if !link.primary_ready.wait_deadline(ctx, deadline) {
                return None;
            }
            let (pn, pname) = (*link.primary_pub.lock())?;
            vmmc.import_retry(ctx, pn, pname, boot).ok()
        })();
        let Some(ack_dst) = ack_dst else {
            // A promotion may have raced the failed rendezvous. An
            // empty replica is still zero-lost: no write was ever
            // acked through this link, and without the link no write
            // was ever acked as replicated at all.
            if matches!(mode, RecvMode::Backup) {
                if let Some(epoch) = promo.try_recv() {
                    spawn_serve_workers(
                        &cluster,
                        &ctx.handle(),
                        shard,
                        epoch,
                        bnode,
                        Arc::clone(&store),
                        None,
                    );
                }
            }
            return;
        };

        let flag_stage = vmmc.proc_().alloc(4, CacheMode::WriteBack);
        // Birth after setup: a crash ridden out by the bootstrap
        // retries counts as a (re)start, not a death.
        let birth = cluster.system().daemon(bnode).restarts();
        let flag_va = base.add(slots * REC_BYTES);
        let mut next: u64 = 1;
        // Past the cut record: loads become live applies.
        let mut synced = false;
        loop {
            if cluster.is_shutdown() || ctl.is_abort() {
                return;
            }
            let d = cluster.system().daemon(bnode);
            if d.is_down() || d.restarts() != birth {
                return;
            }
            if matches!(mode, RecvMode::Backup) {
                if let Some(epoch) = promo.try_recv() {
                    // Promoted: the replica becomes the shard under
                    // the bumped epoch, unreplicated until the
                    // watchdog re-arms. Records past `next` were
                    // never acked to any client.
                    spawn_serve_workers(
                        &cluster,
                        &ctx.handle(),
                        shard,
                        epoch,
                        bnode,
                        Arc::clone(&store),
                        None,
                    );
                    return;
                }
                if ctl.is_active() && cluster.route(shard).backup != Some(bnode) {
                    // Deposed (migrated away or demoted) — but a
                    // racing promotion signal still wins.
                    if let Some(epoch) = promo.try_recv() {
                        spawn_serve_workers(
                            &cluster,
                            &ctx.handle(),
                            shard,
                            epoch,
                            bnode,
                            Arc::clone(&store),
                            None,
                        );
                    }
                    return;
                }
            }
            if synced && !ctl.is_active() {
                // Cut acked, activation CAS pending: no records can
                // arrive until the orchestrator unfreezes writes.
                ctx.advance(cfg.watch_interval);
                continue;
            }
            let want = next as u32;
            let tail = match vmmc.wait_u32_deadline(
                ctx,
                flag_va,
                ACK_POLLS,
                ctx.now() + cfg.watch_interval,
                |v| seq_ge(v, want),
            ) {
                Ok(v) => v,
                // Timeout is just the bounded-wait slice expiring so
                // the promotion/shutdown/liveness checks re-run.
                Err(VmmcError::Timeout { .. }) => continue,
                Err(_) => return,
            };
            // Every record the flag admits has landed (in-order
            // delivery); drain them all, then ack the tail once.
            let n = tail.wrapping_sub(want).wrapping_add(1) as u64;
            let mut was_cut = false;
            if !synced {
                // Bulk batch: packed records from the region start.
                if n > (slots * REC_BYTES / REC_HDR) as u64 {
                    return;
                }
                let Ok(raw) = vmmc.proc_().read(ctx, base, slots * REC_BYTES) else {
                    return;
                };
                let mut off = 0usize;
                for k in 0..n {
                    let Some((used, seq, kind, key, val)) = decode_packed(&raw[off..]) else {
                        return;
                    };
                    off += used;
                    if kind == KIND_CUT {
                        // The cut always closes its batch.
                        if k + 1 != n {
                            return;
                        }
                        store.lock().set_last_seq(seq);
                        synced = true;
                        was_cut = true;
                    } else {
                        let val = (kind == KIND_PUT).then_some(val);
                        store.lock().load_entry(seq, key, val);
                    }
                }
            } else {
                // Live records in their fixed slots, at most one
                // window's worth outstanding.
                if n > slots as u64 {
                    return;
                }
                for k in 0..n {
                    let idx = next + k;
                    let slot = ((idx - 1) % slots as u64) as usize;
                    let Ok(raw) = vmmc
                        .proc_()
                        .read(ctx, base.add(slot * REC_BYTES), REC_BYTES)
                    else {
                        return;
                    };
                    let Some((seq, kind, key, val)) = decode_record(&raw) else {
                        return;
                    };
                    if kind == KIND_CUT {
                        store.lock().set_last_seq(seq);
                    } else {
                        let op = if kind == KIND_DEL {
                            Op::Del { key }
                        } else {
                            Op::Put { key, val }
                        };
                        store.lock().apply_at(seq, &op);
                    }
                }
            }
            if vmmc.proc_().write_u32(ctx, flag_stage, tail).is_err() {
                return;
            }
            if vmmc.send(ctx, flag_stage, &ack_dst, 0, 4).is_err() {
                return;
            }
            next += n;
            if was_cut && matches!(mode, RecvMode::Sink) {
                return;
            }
        }
    });
}

/// Answer every further replication request as degraded. The process
/// parks on the channel; once its worker generation is fenced nothing
/// more arrives.
fn drain_degraded(ctx: &Ctx, rx: &SimChannel<ReplReq>) {
    loop {
        let req = rx.recv(ctx);
        req.done.send(&ctx.handle(), false);
    }
}

/// Spawn the sync/transition orchestrator for one shard. It owns the
/// sender half of the record stream: establishes the channel, runs the
/// snapshot + delta + cut phases (for re-arm and migration), performs
/// the activation CAS, and — for replication transitions — stays on as
/// the live replicator until the stream degrades or the generation is
/// deposed.
pub(crate) fn spawn_transition(
    cluster: &Arc<SvcCluster>,
    h: &SimHandle,
    shard: usize,
    kind: Transition,
) {
    let cluster = Arc::clone(cluster);
    let gen = cluster.next_gen();
    let name = format!("svc-sync-s{shard}-g{gen}");
    h.spawn(name.clone(), move |ctx| {
        let cfg = cluster.config().clone();
        // Per-kind setup; re-arm and migration spawn their receiver
        // here, the initial transition got one at construction.
        let (expect_epoch, source, bnode, link, ctl, repl, dst_store, promo, migrate_to, initial);
        match kind {
            Transition::Initial {
                bnode: b,
                repl: r,
                ctl: c,
                link: l,
            } => {
                expect_epoch = 0;
                source = cluster.route(shard).primary;
                bnode = b;
                link = l;
                ctl = c;
                repl = Some(r);
                dst_store = None;
                promo = None;
                migrate_to = None;
                initial = true;
            }
            Transition::Rearm {
                expect_epoch: e,
                from,
                to,
            }
            | Transition::Migrate {
                expect_epoch: e,
                from,
                to,
            } => {
                let migrating = matches!(kind, Transition::Migrate { .. });
                expect_epoch = e;
                source = from;
                bnode = to;
                link = Arc::new(ReplLink::default());
                ctl = Arc::new(GenCtl::new(false));
                let store = Arc::new(Mutex::new(ShardStore::new()));
                let p: SimChannel<u32> = SimChannel::new();
                let rgen = cluster.next_gen();
                spawn_receiver(
                    &cluster,
                    &ctx.handle(),
                    shard,
                    to,
                    Arc::clone(&link),
                    Arc::clone(&store),
                    p.clone(),
                    Arc::clone(&ctl),
                    if migrating {
                        RecvMode::Sink
                    } else {
                        RecvMode::Backup
                    },
                    rgen,
                );
                repl = (!migrating).then(SimChannel::new);
                dst_store = Some(store);
                promo = Some(p);
                migrate_to = migrating.then_some(to);
                initial = false;
            }
        }

        let vmmc = cluster.system().endpoint(source, name);
        let boot = RetryPolicy::bootstrap();
        let ack_va = vmmc.proc_().alloc(4, CacheMode::WriteBack);
        let peer: Option<ImportHandle> = (|| {
            let bufname = export_retry(&vmmc, ctx, ack_va, 4, boot).ok()?;
            *link.primary_pub.lock() = Some((vmmc.node_id(), bufname));
            link.primary_ready.open(&ctx.handle());
            let deadline = ctx.now() + boot.total_budget();
            if !link.backup_ready.wait_deadline(ctx, deadline) {
                return None;
            }
            let (bn, bname) = (*link.backup_pub.lock())?;
            vmmc.import_retry(ctx, bn, bname, boot).ok()
        })();
        let Some(dst) = peer else {
            if initial {
                // Epoch-0 replication never came up: degrade exactly
                // like a mid-stream failure.
                cluster.demote_backup(ctx.now(), shard);
                drain_degraded(ctx, repl.as_ref().expect("initial is chained"));
            } else {
                ctl.set_abort();
                cluster.abort_transition(ctx.now(), shard);
            }
            return;
        };

        let birth = cluster.system().daemon(bnode).restarts();
        let rec_stage = vmmc.proc_().alloc(REC_BYTES, CacheMode::WriteBack);
        let batch_stage = vmmc
            .proc_()
            .alloc(cfg.repl_slots as usize * REC_BYTES, CacheMode::WriteBack);
        let flag_stage = vmmc.proc_().alloc(4, CacheMode::WriteBack);
        let mut tx = RecordSender {
            vmmc: &vmmc,
            dst,
            rec_stage,
            batch_stage,
            flag_stage,
            ack_va,
            slots: cfg.repl_slots as u64,
            idx: 1,
            shard,
            bnode,
            birth,
        };

        let mut live_epoch = expect_epoch;
        if initial {
            // Both stores are empty; the cut pins the receiver at
            // sequence 0 and everything after is live.
            if !tx.send_packed(ctx, &cluster, expect_epoch, &[(0, KIND_CUT, &[], &[])])
                || !tx.commit(ctx, &cluster, expect_epoch)
            {
                cluster.demote_backup(ctx.now(), shard);
                drain_degraded(ctx, repl.as_ref().expect("initial is chained"));
                return;
            }
        } else {
            let src_store = cluster.authoritative_store(shard);
            // Phase 1 — concurrent snapshot: one lock acquisition
            // fixes the cut; writes keep flowing while it streams.
            let (snap, cut) = {
                let g = src_store.lock();
                (g.entries(), g.last_seq())
            };
            let mut ok = tx.send_packed(ctx, &cluster, expect_epoch, &packed_recs(&snap));
            // Phase 2 — freeze writes and drain the in-flight ones,
            // then stream the delta the snapshot missed, closed by the
            // cut in the same batch.
            let mut froze = false;
            if ok {
                froze = true;
                ok = cluster.freeze_writes(ctx, shard);
            }
            if ok {
                let (delta, fin) = {
                    let g = src_store.lock();
                    (g.entries_since(cut), g.last_seq())
                };
                let mut recs = packed_recs(&delta);
                recs.push((fin, KIND_CUT, &[], &[]));
                // Phase 3 — the cut's ack commits the whole stream.
                ok = tx.send_packed(ctx, &cluster, expect_epoch, &recs)
                    && tx.commit(ctx, &cluster, expect_epoch);
            }
            if !ok {
                if froze {
                    cluster.unfreeze_writes(shard);
                }
                ctl.set_abort();
                cluster.abort_transition(ctx.now(), shard);
                return;
            }
            // Phase 4 — activation CAS under the routing lock; a
            // concurrent promotion wins and aborts the sync.
            let activation = match migrate_to {
                Some(to) => Activation::Migrate {
                    to,
                    store: Arc::clone(dst_store.as_ref().expect("sync has a target store")),
                },
                None => Activation::Rearm {
                    link: BackupLink {
                        node: bnode,
                        store: Arc::clone(dst_store.as_ref().expect("sync has a target store")),
                        promo: promo.clone().expect("sync has a promotion channel"),
                    },
                },
            };
            match cluster.activate(ctx, shard, expect_epoch, activation) {
                None => {
                    ctl.set_abort();
                    cluster.unfreeze_writes(shard);
                    return;
                }
                Some(epoch) => {
                    ctl.set_active();
                    cluster.unfreeze_writes(shard);
                    match migrate_to {
                        Some(to) => {
                            spawn_serve_workers(
                                &cluster,
                                &ctx.handle(),
                                shard,
                                epoch,
                                to,
                                Arc::clone(dst_store.as_ref().expect("sync has a target store")),
                                None,
                            );
                            return;
                        }
                        None => {
                            let chan = repl.clone().expect("re-arm owns a replication channel");
                            spawn_serve_workers(
                                &cluster,
                                &ctx.handle(),
                                shard,
                                epoch,
                                source,
                                Arc::clone(&src_store),
                                Some(chan),
                            );
                            if cfg.hedge_reads {
                                spawn_hedge_workers(
                                    &cluster,
                                    &ctx.handle(),
                                    shard,
                                    epoch,
                                    bnode,
                                    Arc::clone(
                                        dst_store.as_ref().expect("sync has a target store"),
                                    ),
                                );
                            }
                            live_epoch = epoch;
                        }
                    }
                }
            }
        }

        // Live replication: hold each client reply until the record's
        // ack, demote-before-ack on failure.
        let rx = repl.expect("live replication owns a channel");
        loop {
            let req = rx.recv(ctx);
            if tx.send_op(ctx, &cluster, live_epoch, req.seq, &req.op) {
                req.done.send(&ctx.handle(), true);
            } else {
                // Degrade: clear the backup from the route *before*
                // acknowledging the unreplicated write, so no hedge or
                // promotion can trust the stale replica afterwards.
                cluster.demote_backup(ctx.now(), shard);
                req.done.send(&ctx.handle(), false);
                break;
            }
        }
        drain_degraded(ctx, &rx);
    });
}

/// The cluster watchdog: polls daemon liveness every `watch_interval`
/// and drives the self-healing transitions — promotion first, then
/// revival, then claimed migrations, then re-replication.
pub(crate) fn spawn_watchdog(cluster: &Arc<SvcCluster>) {
    let h = cluster.system().sim().clone();
    let cluster = Arc::clone(cluster);
    h.spawn("svc-watchdog", move |ctx| loop {
        if cluster.is_shutdown() {
            return;
        }
        ctx.advance(cluster.config().watch_interval);
        if cluster.is_shutdown() {
            return;
        }
        for shard in 0..cluster.config().shards {
            cluster.promote_if_down(ctx, shard);
            if let Some((epoch, node, store)) = cluster.revive_if_restarted(ctx, shard) {
                spawn_serve_workers(&cluster, &ctx.handle(), shard, epoch, node, store, None);
            }
        }
        for (shard, t) in cluster.claim_migrations(ctx) {
            spawn_transition(&cluster, &ctx.handle(), shard, t);
        }
        for shard in 0..cluster.config().shards {
            if let Some(t) = cluster.claim_rearm(ctx, shard) {
                spawn_transition(&cluster, &ctx.handle(), shard, t);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let op_key = b"alpha".to_vec();
        let op_val = b"some value".to_vec();
        let (seq, kind, key, val) =
            decode_record(&encode_record(77, KIND_PUT, &op_key, &op_val)).expect("well-formed");
        assert_eq!((seq, kind), (77, KIND_PUT));
        assert_eq!(key, op_key);
        assert_eq!(val, op_val);

        let (seq, kind, key, val) =
            decode_record(&encode_record(78, KIND_DEL, &op_key, &[])).expect("well-formed");
        assert_eq!((seq, kind), (78, KIND_DEL));
        assert_eq!(key, op_key);
        assert!(val.is_empty());

        let (seq, kind, key, val) =
            decode_record(&encode_record(1234, KIND_CUT, &[], &[])).expect("well-formed");
        assert_eq!((seq, kind), (1234, KIND_CUT));
        assert!(key.is_empty() && val.is_empty());

        assert_eq!(REC_BYTES % 4, 0, "slot offsets must stay word-aligned");
    }

    #[test]
    fn packed_roundtrip() {
        let mut buf = Vec::new();
        encode_packed_into(&mut buf, 9, KIND_PUT, b"alpha", b"some value");
        encode_packed_into(&mut buf, 10, KIND_DEL, b"beta!!", b"");
        encode_packed_into(&mut buf, 11, KIND_CUT, b"", b"");
        assert_eq!(buf.len() % 4, 0, "packed batches stay word-aligned");

        let (used, seq, kind, key, val) = decode_packed(&buf).expect("well-formed");
        assert_eq!((seq, kind), (9, KIND_PUT));
        assert_eq!(
            (key.as_slice(), val.as_slice()),
            (&b"alpha"[..], &b"some value"[..])
        );
        assert_eq!(used, packed_len(5, 10));

        let (used2, seq, kind, key, val) = decode_packed(&buf[used..]).expect("well-formed");
        assert_eq!((seq, kind), (10, KIND_DEL));
        assert_eq!(key, b"beta!!");
        assert!(val.is_empty());

        let (used3, seq, kind, key, val) = decode_packed(&buf[used + used2..]).expect("cut");
        assert_eq!((seq, kind, used3), (11, KIND_CUT, REC_HDR));
        assert!(key.is_empty() && val.is_empty());
        assert_eq!(used + used2 + used3, buf.len());

        assert!(decode_packed(&buf[..10]).is_none(), "truncated header");
        let mut bad = buf.clone();
        bad[8..12].copy_from_slice(&7u32.to_le_bytes());
        assert!(decode_packed(&bad).is_none(), "unknown kind");
    }

    #[test]
    fn decode_rejects_malformed_records() {
        assert!(decode_record(&[0u8; 8]).is_none(), "truncated");
        let mut bad_kind = encode_record(1, KIND_PUT, b"k", b"v");
        bad_kind[8..12].copy_from_slice(&9u32.to_le_bytes());
        assert!(decode_record(&bad_kind).is_none(), "unknown kind");
        let mut bad_len = encode_record(1, KIND_PUT, b"k", b"v");
        bad_len[12..16].copy_from_slice(&(MAX_KEY as u32 + 1).to_le_bytes());
        assert!(decode_record(&bad_len).is_none(), "oversized key length");
    }
}
