//! `shrimp-svc`: a sharded, primary–backup replicated key-value
//! serving subsystem built directly on VMMC, plus a deterministic
//! open-loop load engine for driving it.
//!
//! The paper's argument is that VMMC's user-level buffer management
//! and separated data/control transfer let *real services* run at
//! near-hardware speed. This crate is that service-scale workload for
//! the reproduction:
//!
//! * **Sharding** — every node hosts one shard primary; a consistent-
//!   hash ring ([`ShardRing`]) routes keys to shards, so adding
//!   shards moves only a proportional slice of the keyspace.
//! * **Fast path** — `get`/`put`/`delete` run over the SHRIMP RPC
//!   persistent channel geometry (`shrimp-srpc`): one bidirectional
//!   automatic-update binding per client↔shard pair, established
//!   once, with no per-request rendezvous.
//! * **Replication** — each primary chains its mutations to the next
//!   node's backup replica through a dedicated VMMC deposit channel
//!   with flag-after-data commit; a write is acknowledged to the
//!   client only after the backup's ack word comes back, so an acked
//!   write survives the primary's death.
//! * **Failover** — the existing `FaultPlan` daemon-crash machinery
//!   doubles as shard-server death: a cluster watchdog notices the
//!   downed daemon, promotes the backup under a bumped epoch, and
//!   clients re-route on their bounded-wait timeouts
//!   ([`VmmcError::Timeout`](shrimp_core::VmmcError::Timeout) /
//!   [`DaemonUnavailable`](shrimp_core::VmmcError::DaemonUnavailable)
//!   surfaced through [`SvcError`]).
//! * **Load engine** — [`load`] generates open-loop Poisson or
//!   fixed-rate arrivals in virtual time with Zipfian key popularity
//!   and a read/write mix, feeds per-request latencies into the
//!   shared [`shrimp_obs::Log2Hist`], and sheds arrivals past a
//!   bounded queue so overload degrades gracefully.
//!
//! Everything runs inside the deterministic simulation kernel: the
//! same seeds and fault plans replay bit-identically, which is what
//! makes the `svcbench` latency/failover numbers committable.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod cluster;
pub mod load;
mod read_through;
mod server;
pub mod store;

pub use client::{ClientStats, SvcClient};
pub use cluster::{ClusterEvent, Promotion, ShardRoute, SvcCluster, SvcConfig};
pub use load::{spawn_engine, Arrival, LoadPlan, LoadStats, Outage, Request};
pub use store::{Applied, Op, ShardStore, MAX_KEY, MAX_VAL};

use shrimp_core::VmmcError;
use shrimp_srpc::SrpcError;

/// Errors surfaced by the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum SvcError {
    /// The RPC fast path failed; wraps the transport error, including
    /// [`VmmcError::Timeout`] (bounded wait expired — the peer is slow
    /// or dead) and [`VmmcError::DaemonUnavailable`] (the target
    /// node's daemon is down).
    Rpc(SrpcError),
    /// A key exceeded [`MAX_KEY`] or a value exceeded [`MAX_VAL`].
    TooLarge {
        /// Offending length.
        len: usize,
        /// The limit it exceeded.
        limit: usize,
    },
    /// Every retry was exhausted without reaching the shard — the
    /// route never recovered within the client's attempt budget.
    Exhausted {
        /// Shard the operation was routed to.
        shard: usize,
        /// Attempts spent.
        attempts: u32,
    },
    /// The per-request deadline budget expired before any attempt
    /// succeeded. Distinct from [`SvcError::Exhausted`]: the caller
    /// ran out of *time*, not attempts, so a fresh request (with a
    /// fresh budget) may well succeed once the route recovers.
    DeadlineExceeded {
        /// Shard the operation was routed to.
        shard: usize,
        /// Attempts spent before the budget ran dry.
        attempts: u32,
    },
}

/// Retry classification for a failed operation — whether issuing the
/// same request again (with a fresh deadline budget) can succeed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryClass {
    /// Transient: a timeout, daemon outage, route churn, or budget
    /// expiry. The cluster may heal; retrying is sound.
    Transient,
    /// Terminal: the request itself is invalid (oversized payload,
    /// protocol violation). Retrying the identical request fails
    /// identically.
    Terminal,
}

impl std::fmt::Display for SvcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SvcError::Rpc(e) => write!(f, "rpc: {e}"),
            SvcError::TooLarge { len, limit } => {
                write!(f, "payload of {len} bytes exceeds limit {limit}")
            }
            SvcError::Exhausted { shard, attempts } => {
                write!(f, "shard {shard} unreachable after {attempts} attempts")
            }
            SvcError::DeadlineExceeded { shard, attempts } => {
                write!(
                    f,
                    "deadline budget expired after {attempts} attempts on shard {shard}"
                )
            }
        }
    }
}

impl std::error::Error for SvcError {}

impl From<SrpcError> for SvcError {
    fn from(e: SrpcError) -> Self {
        SvcError::Rpc(e)
    }
}

impl From<VmmcError> for SvcError {
    fn from(e: VmmcError) -> Self {
        SvcError::Rpc(SrpcError::Vmmc(e))
    }
}

impl SvcError {
    /// True when the underlying failure is a bounded-wait timeout.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            SvcError::Rpc(SrpcError::Vmmc(VmmcError::Timeout { .. }))
        )
    }

    /// True when the failure is transient and a retry against a
    /// (possibly re-routed) shard can succeed: timeouts and daemon
    /// outages.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            SvcError::Rpc(SrpcError::Vmmc(
                VmmcError::Timeout { .. } | VmmcError::DaemonUnavailable { .. }
            ))
        )
    }

    /// Classify the failure for a caller deciding whether to reissue
    /// the request. Exhausted attempts and expired deadlines are
    /// [`RetryClass::Transient`] — the cluster heals over virtual
    /// time — as are timeouts and daemon outages. Only failures that
    /// indict the request itself are [`RetryClass::Terminal`].
    pub fn class(&self) -> RetryClass {
        match self {
            SvcError::Exhausted { .. } | SvcError::DeadlineExceeded { .. } => RetryClass::Transient,
            SvcError::TooLarge { .. } => RetryClass::Terminal,
            SvcError::Rpc(_) if self.is_retryable() => RetryClass::Transient,
            SvcError::Rpc(_) => RetryClass::Terminal,
        }
    }
}

/// FNV-1a over a byte string — the routing hash.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Virtual points per shard on the consistent-hash ring — enough that
/// keyspace slices stay within a few percent of uniform.
const VNODES: usize = 64;

/// A consistent-hash ring mapping keys onto shards: each shard owns
/// [`VNODES`] pseudo-random points on the `u64` circle and a key
/// belongs to the first point clockwise of its hash. Built once per
/// cluster; lookups are a binary search.
#[derive(Debug, Clone)]
pub struct ShardRing {
    points: Vec<(u64, u32)>,
    shards: usize,
}

impl ShardRing {
    /// Build the ring for `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn new(shards: usize) -> ShardRing {
        assert!(shards > 0, "a cluster needs at least one shard");
        let mut points = Vec::with_capacity(shards * VNODES);
        for s in 0..shards {
            for v in 0..VNODES {
                let mut tag = [0u8; 16];
                tag[..8].copy_from_slice(&(s as u64).to_le_bytes());
                tag[8..].copy_from_slice(&(v as u64).to_le_bytes());
                points.push((fnv1a(&tag), s as u32));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|p| p.0);
        ShardRing { points, shards }
    }

    /// Number of shards the ring routes to.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        let h = fnv1a(key);
        let i = self.points.partition_point(|&(p, _)| p < h);
        let (_, s) = self.points[i % self.points.len()];
        s as usize
    }
}

/// Wrapping `>=` over `u32` sequence numbers (replication ack words
/// truncate the 64-bit store sequence to the wire's 32 bits).
pub(crate) fn seq_ge(a: u32, b: u32) -> bool {
    a.wrapping_sub(b) as i32 >= 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_routes_deterministically_and_spreads() {
        let ring = ShardRing::new(4);
        let mut counts = [0usize; 4];
        for i in 0..4096 {
            let key = format!("key-{i:06}");
            let s = ring.shard_of(key.as_bytes());
            assert_eq!(s, ring.shard_of(key.as_bytes()));
            counts[s] += 1;
        }
        for &c in &counts {
            assert!(c > 4096 / 16, "a shard owns too little: {counts:?}");
        }
    }

    #[test]
    fn ring_growth_moves_only_a_slice() {
        let a = ShardRing::new(4);
        let b = ShardRing::new(5);
        let moved = (0..4096)
            .filter(|i| {
                let key = format!("key-{i:06}");
                a.shard_of(key.as_bytes()) != b.shard_of(key.as_bytes())
            })
            .count();
        // Consistent hashing moves ~1/5 of keys; plain modulo would
        // move ~4/5. Allow a generous band.
        assert!(
            moved < 4096 / 2,
            "adding a shard moved {moved}/4096 keys — not consistent"
        );
    }

    #[test]
    fn seq_ge_wraps() {
        assert!(seq_ge(5, 5));
        assert!(seq_ge(6, 5));
        assert!(!seq_ge(5, 6));
        assert!(seq_ge(3, u32::MAX - 2));
    }
}
