//! Zero-copy read-through: serving cache-resident `get`s with a
//! one-sided remote fetch instead of an RPC round trip.
//!
//! When [`read_through`](crate::SvcConfig::read_through) is on, every
//! primary generation exports a fixed table of *value slots* with the
//! read-permission bit set. A slot is the publication of one key's
//! latest entry:
//!
//! ```text
//! [epoch u32][seq u32][klen u32][vlen u32][key 32][val 64]   112 B
//! ```
//!
//! Keys map to slots by `fnv1a(key) % RT_SLOTS`; a colliding key
//! simply overwrites the slot, so a fetch can *miss* (the slot holds a
//! different key) — the client then falls back to the SRPC `get`. The
//! `vlen` field doubles as the slot's validity tag:
//! [`VLEN_EMPTY`] marks a never-written slot and [`VLEN_TOMB`] a
//! deleted key (the fetch is still a *hit*: the deletion is the
//! answer).
//!
//! The primary updates the slot inside the store lock, before the
//! mutation's commit point (the backup's ack), so the table is never
//! behind any acknowledged write of its epoch. Every slot carries the
//! generation's routing epoch; a client validates epoch *and* key
//! after the fetch and falls back to RPC on any mismatch, so deposed
//! generations and hash collisions are indistinguishable from a plain
//! cache miss — never a wrong answer.

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{ExportOpts, Vmmc, VmmcError};
use shrimp_node::{CacheMode, UserProc, VAddr};
use shrimp_sim::{Ctx, RetryPolicy, SimHandle};

use crate::cluster::SvcCluster;
use crate::fnv1a;
use crate::store::{ShardStore, MAX_KEY, MAX_VAL};

/// Slots per shard table. Collisions only cost a fallback RPC, so this
/// trades export size against hit rate for hot keysets.
pub(crate) const RT_SLOTS: usize = 256;

/// One slot: header, fixed key field, fixed value field.
pub(crate) const SLOT_HDR: usize = 16;
/// Whole slot size — a multiple of the word size so slot offsets meet
/// the fetch engine's alignment restriction.
pub(crate) const SLOT_BYTES: usize = SLOT_HDR + MAX_KEY + MAX_VAL;

/// `vlen` tag: the slot has never held a key.
pub(crate) const VLEN_EMPTY: u32 = u32::MAX;
/// `vlen` tag: the slot's key is deleted (a sequenced tombstone).
pub(crate) const VLEN_TOMB: u32 = u32::MAX - 1;

/// The slot a key publishes to.
pub(crate) fn slot_of(key: &[u8]) -> usize {
    (fnv1a(key) % RT_SLOTS as u64) as usize
}

/// Encode one slot image.
pub(crate) fn encode_slot(epoch: u32, seq: u32, key: &[u8], val: Option<&[u8]>) -> Vec<u8> {
    debug_assert!(key.len() <= MAX_KEY);
    let mut out = vec![0u8; SLOT_BYTES];
    out[..4].copy_from_slice(&epoch.to_le_bytes());
    out[4..8].copy_from_slice(&seq.to_le_bytes());
    out[8..12].copy_from_slice(&(key.len() as u32).to_le_bytes());
    let vlen = match val {
        Some(v) => {
            debug_assert!(v.len() <= MAX_VAL);
            out[SLOT_HDR + MAX_KEY..SLOT_HDR + MAX_KEY + v.len()].copy_from_slice(v);
            v.len() as u32
        }
        None => VLEN_TOMB,
    };
    out[12..16].copy_from_slice(&vlen.to_le_bytes());
    out[SLOT_HDR..SLOT_HDR + key.len()].copy_from_slice(key);
    out
}

/// What one fetched slot says about the requested key under the
/// requested epoch.
pub(crate) enum SlotAnswer {
    /// The slot publishes this key at this epoch: the entry's sequence
    /// and value (`None` = deleted).
    Hit(u64, Option<Vec<u8>>),
    /// Empty, a different key (collision), or a different epoch — fall
    /// back to the RPC path.
    Miss,
}

/// Decode a fetched slot against the key and epoch the client asked
/// about. Anything malformed is a miss: the fallback RPC is always
/// correct.
pub(crate) fn decode_slot(raw: &[u8], epoch: u32, key: &[u8]) -> SlotAnswer {
    if raw.len() < SLOT_BYTES {
        return SlotAnswer::Miss;
    }
    let slot_epoch = u32::from_le_bytes(raw[..4].try_into().expect("sized"));
    let seq = u32::from_le_bytes(raw[4..8].try_into().expect("sized"));
    let klen = u32::from_le_bytes(raw[8..12].try_into().expect("sized")) as usize;
    let vlen = u32::from_le_bytes(raw[12..16].try_into().expect("sized"));
    if slot_epoch != epoch || vlen == VLEN_EMPTY || klen > MAX_KEY {
        return SlotAnswer::Miss;
    }
    if raw[SLOT_HDR..SLOT_HDR + klen] != *key || klen != key.len() {
        return SlotAnswer::Miss;
    }
    if vlen == VLEN_TOMB {
        return SlotAnswer::Hit(seq as u64, None);
    }
    let vlen = vlen as usize;
    if vlen > MAX_VAL {
        return SlotAnswer::Miss;
    }
    SlotAnswer::Hit(
        seq as u64,
        Some(raw[SLOT_HDR + MAX_KEY..SLOT_HDR + MAX_KEY + vlen].to_vec()),
    )
}

/// The writable side of one generation's slot table: a clone of the
/// exporting process (threads share the address space) plus the
/// table's base. Mutations poke slots while holding the store lock, so
/// slot updates are ordered exactly like the store's sequence.
pub(crate) struct RtRegion {
    /// The routing epoch whose mutations this table publishes.
    pub(crate) epoch: u32,
    proc_: UserProc,
    base: VAddr,
}

impl std::fmt::Debug for RtRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtRegion")
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

impl RtRegion {
    /// Publish `key`'s latest entry (`None` = tombstone) to its slot.
    /// The local slot store is not a timed DMA — it is the primary
    /// writing its own exported memory, so it carries no virtual-time
    /// cost beyond the mutation that triggered it.
    pub(crate) fn write_slot(&self, key: &[u8], seq: u64, val: Option<&[u8]>) {
        let img = encode_slot(self.epoch, seq as u32, key, val);
        let va = self.base.add(slot_of(key) * SLOT_BYTES);
        self.proc_.poke(va, &img).expect("the slot table is mapped");
    }

    /// Mark every slot empty (fresh tables must not decode as
    /// publishing the zero key under epoch 0).
    fn clear_all(&self) {
        let mut img = vec![0u8; SLOT_BYTES];
        img[..4].copy_from_slice(&self.epoch.to_le_bytes());
        img[12..16].copy_from_slice(&VLEN_EMPTY.to_le_bytes());
        for s in 0..RT_SLOTS {
            self.proc_
                .poke(self.base.add(s * SLOT_BYTES), &img)
                .expect("the slot table is mapped");
        }
    }
}

/// Spawn the slot-table exporter for one primary generation: allocate
/// and export the table fetchable, seed it from the store, install the
/// write handle for the mutation path, and publish the buffer name for
/// clients — then exit (the export outlives the process).
pub(crate) fn spawn_rt_exporter(
    cluster: &Arc<SvcCluster>,
    h: &SimHandle,
    shard: usize,
    epoch: u32,
    node: usize,
    store: Arc<Mutex<ShardStore>>,
) {
    let cluster = Arc::clone(cluster);
    let name = format!("svc-rt-s{shard}-e{epoch}");
    h.spawn(name.clone(), move |ctx| {
        let vmmc = cluster.system().endpoint(node, name);
        let total = RT_SLOTS * SLOT_BYTES;
        let base = vmmc.proc_().alloc(total, CacheMode::WriteBack);
        let region = RtRegion {
            epoch,
            proc_: vmmc.proc_().clone(),
            base,
        };
        region.clear_all();
        let Ok(bufname) = export_rt(&vmmc, ctx, base, total) else {
            // The daemon never came back up within the bootstrap
            // budget; this generation serves without read-through.
            return;
        };
        // Seed and install atomically against mutations: both under
        // the store lock, the same lock the mutation path pokes under.
        {
            let g = store.lock();
            for (key, seq, val) in g.entries() {
                region.write_slot(&key, seq, val.as_deref());
            }
            cluster.install_rt(shard, region);
        }
        cluster.set_rt_pub(shard, epoch, node, bufname);
    });
}

/// Export that rides out daemon outages with the bootstrap backoff
/// (mirrors the record stream's `export_retry`, with read permission).
fn export_rt(
    vmmc: &Vmmc,
    ctx: &Ctx,
    base: VAddr,
    len: usize,
) -> Result<shrimp_core::BufferName, VmmcError> {
    let policy = RetryPolicy::bootstrap();
    for attempt in 0..policy.attempts {
        let opts = ExportOpts {
            read: true,
            ..Default::default()
        };
        match vmmc.export(ctx, base, len, opts) {
            Err(VmmcError::DaemonUnavailable { .. }) => ctx.advance(policy.timeout(attempt)),
            other => return other,
        }
    }
    Err(VmmcError::Timeout {
        op: "svc rt export",
        waited: policy.total_budget(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_roundtrip_and_validation() {
        assert_eq!(SLOT_BYTES % 4, 0, "slot offsets must stay word-aligned");
        let raw = encode_slot(3, 41, b"alpha", Some(b"value-bytes"));
        match decode_slot(&raw, 3, b"alpha") {
            SlotAnswer::Hit(seq, Some(v)) => {
                assert_eq!(seq, 41);
                assert_eq!(v, b"value-bytes");
            }
            _ => panic!("expected a hit"),
        }
        // Wrong epoch, wrong key, and a key prefix are all misses.
        assert!(matches!(decode_slot(&raw, 4, b"alpha"), SlotAnswer::Miss));
        assert!(matches!(decode_slot(&raw, 3, b"beta!"), SlotAnswer::Miss));
        assert!(matches!(decode_slot(&raw, 3, b"alph"), SlotAnswer::Miss));

        let tomb = encode_slot(3, 42, b"alpha", None);
        assert!(matches!(
            decode_slot(&tomb, 3, b"alpha"),
            SlotAnswer::Hit(42, None)
        ));

        let mut empty = vec![0u8; SLOT_BYTES];
        empty[12..16].copy_from_slice(&VLEN_EMPTY.to_le_bytes());
        assert!(matches!(decode_slot(&empty, 0, b""), SlotAnswer::Miss));
    }
}
