//! Cluster assembly: shard placement, routing epochs, the watchdog's
//! self-healing protocol, and shutdown choreography.
//!
//! Placement is *chained*: with `N` nodes and `N` shards, node `s`
//! runs the primary of shard `s` and the backup replica of shard
//! `(s - 1) mod N` — the paper-era "one server per node" layout where
//! replication traffic is one hop of deliberate-update deposits along
//! the ring.
//!
//! A shard's *route* is `(primary, backup, epoch)`; every epoch bump
//! fences the previous generation (service names are epoch-qualified
//! and the serve fence re-checks the route before any reply). The
//! watchdog polls daemon liveness every
//! [`watch_interval`](SvcConfig::watch_interval) and drives four
//! transitions, each recorded as a [`ClusterEvent`]:
//!
//! * **Promotion** — the primary's daemon is down (or restarted since
//!   the route was established) and a live backup exists: the backup
//!   becomes the primary under a bumped epoch and its store becomes
//!   authoritative. Zero acked writes are lost because the commit
//!   point of every replicated write is the backup's ack.
//! * **Revival** — an unreplicated shard's primary daemon restarted:
//!   the shard's mappings died with the daemon but its process memory
//!   did not (the RAMC re-establishment model), so a fresh worker
//!   generation re-exports the same store under a bumped epoch.
//! * **Migration** — a planned handoff moves a shard's primary to a
//!   chosen node: concurrent snapshot, write freeze, delta drain, cut,
//!   then the epoch bump activates the target
//!   ([`SvcCluster::request_migration`] or a scripted fault-plan
//!   `Directive { op: "migrate" }`).
//! * **Re-replication** — a shard left without a backup (after a
//!   promotion, migration, or replication degradation) gets a new one:
//!   the watchdog picks the next alive node, streams a snapshot over a
//!   fresh VMMC channel, and re-arms chained replication under a
//!   bumped epoch. This closes the PR 5 "demoted, never replaced" gap.
//!
//! Clients discover every transition through their bounded-wait
//! timeouts and re-bind against the refreshed route; a deposed
//! generation can never answer a current-epoch request.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{BufferName, ShrimpSystem};
use shrimp_sim::{Ctx, SimChannel, SimDur, SimTime};
use shrimp_srpc::{parse_interface, Interface, SrpcDirectory};

use crate::read_through::RtRegion;
use crate::server::{self, ReplReq, Transition};
use crate::store::{Op, ShardStore};
use crate::ShardRing;

/// The KV fast-path interface: fixed-size slots keep the marshaling
/// run consecutive, so a whole request is one combined packet.
const KV_IDL: &str = "interface Kv {
    put(in key: opaque[32], in klen: u32, in val: opaque[64], in vlen: u32,
        out seq: u32, out existed: bool);
    get(in key: opaque[32], in klen: u32,
        out seq: u32, out found: bool, out val: opaque[64], out vlen: u32);
    del(in key: opaque[32], in klen: u32,
        out seq: u32, out existed: bool);
}";

/// How often a worker blocked on a frozen shard re-polls the freeze
/// flag. Freezes last one delta drain, so this stays coarse enough to
/// not flood the event queue and fine enough to not stretch the
/// handoff.
pub(crate) const FREEZE_POLL: SimDur = SimDur::from_ps(10_000_000); // 10 us

/// Cluster shape and protocol timing knobs.
#[derive(Debug, Clone)]
pub struct SvcConfig {
    /// Number of shards (≤ nodes; the chained layout uses one per
    /// node).
    pub shards: usize,
    /// Whether each shard keeps a chained backup replica (and whether
    /// the watchdog re-arms one after it is lost).
    pub replication: bool,
    /// Watchdog poll cadence; also the bounded-wait slice between
    /// promotion/shutdown checks in every polling service process.
    pub watch_interval: SimDur,
    /// Serve workers pre-spawned per shard per epoch — the maximum
    /// concurrent client bindings a shard accepts.
    pub conns_per_shard: usize,
    /// Replication channel depth: live records in flight, and (times
    /// the record size) the bulk sync phases' batch capacity.
    pub repl_slots: u32,
    /// Client-side bound on the binder exchange.
    pub bind_timeout: SimDur,
    /// Client-side bound on one RPC's reply wait.
    pub op_timeout: SimDur,
    /// First retry backoff; doubles per attempt (with deterministic
    /// per-client jitter) up to [`retry_cap`](SvcConfig::retry_cap).
    pub retry_base: SimDur,
    /// Backoff ceiling.
    pub retry_cap: SimDur,
    /// Per-request deadline budget: the client gives up with
    /// [`SvcError::DeadlineExceeded`](crate::SvcError::DeadlineExceeded)
    /// once an operation has been in flight this long, regardless of
    /// attempts left.
    pub op_budget: SimDur,
    /// Client attempt budget per operation (secondary bound under the
    /// deadline budget).
    pub max_attempts: u32,
    /// Serve reads from the backup replica when the primary is slow:
    /// a timed-out read hedges to the backup's read-only service.
    /// Safe because the commit point of every acked write is the
    /// backup's ack — the replica is never behind an acked write.
    pub hedge_reads: bool,
    /// Reply wait before a read gives up on the primary and hedges.
    pub hedge_after: SimDur,
    /// Cooldown after losing a backup (or aborting a transition)
    /// before the watchdog re-arms, so crash-loops don't thrash the
    /// sync path.
    pub rearm_grace: SimDur,
    /// Serve cache-resident `get`s with a one-sided remote fetch of
    /// the primary's exported value-slot table instead of an RPC round
    /// trip (see [`crate::SvcConfig`] and the `read_through` module
    /// docs). The client validates epoch and key on every fetched slot
    /// and falls back to the RPC path on any mismatch, so this is a
    /// pure fast path — never a consistency change.
    pub read_through: bool,
}

impl SvcConfig {
    /// The chained one-shard-per-node layout for an `n`-node system.
    pub fn chained(nodes: usize) -> SvcConfig {
        SvcConfig {
            shards: nodes,
            replication: nodes >= 2,
            watch_interval: SimDur::from_us(100.0),
            conns_per_shard: 2 * nodes,
            repl_slots: 8,
            bind_timeout: SimDur::from_us(1_000.0),
            op_timeout: SimDur::from_us(400.0),
            retry_base: SimDur::from_us(150.0),
            retry_cap: SimDur::from_us(1_500.0),
            op_budget: SimDur::from_us(12_000.0),
            max_attempts: 16,
            hedge_reads: false,
            hedge_after: SimDur::from_us(200.0),
            rearm_grace: SimDur::from_us(300.0),
            read_through: false,
        }
    }
}

/// A shard's current route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRoute {
    /// Node index of the serving primary.
    pub primary: usize,
    /// Node index of the backup replica, if one is live.
    pub backup: Option<usize>,
    /// Routing epoch — bumped at every promotion, revival, migration,
    /// and re-arm; service names are epoch-qualified.
    pub epoch: u32,
}

/// One recorded failover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Promotion {
    /// Virtual time the watchdog promoted.
    pub at: SimTime,
    /// Affected shard.
    pub shard: usize,
    /// Deposed primary node.
    pub from: usize,
    /// Promoted backup node.
    pub to: usize,
    /// The new epoch.
    pub epoch: u32,
}

impl Promotion {
    /// Deterministic one-line rendering.
    pub fn render(&self) -> String {
        format!(
            "promote shard={} epoch={} node{}->node{} at_ps={}",
            self.shard,
            self.epoch,
            self.from,
            self.to,
            self.at.since(SimTime::ZERO).as_ps()
        )
    }
}

/// One recorded routing transition — the cluster's self-healing audit
/// trail. Deterministic under replay, so benches digest the rendered
/// log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterEvent {
    /// A backup was promoted to primary after its primary died.
    Promoted(Promotion),
    /// Replication degraded: the backup was dropped from the route.
    BackupLost {
        /// When.
        at: SimTime,
        /// Affected shard.
        shard: usize,
        /// The node whose replica went stale.
        node: usize,
    },
    /// A new backup finished its snapshot sync and chained replication
    /// re-armed under a bumped epoch.
    Rearmed {
        /// When.
        at: SimTime,
        /// Affected shard.
        shard: usize,
        /// The (unchanged) primary node.
        primary: usize,
        /// The freshly armed backup node.
        backup: usize,
        /// The new epoch.
        epoch: u32,
    },
    /// A planned handoff moved the shard's primary to a new node.
    Migrated {
        /// When.
        at: SimTime,
        /// Affected shard.
        shard: usize,
        /// Source primary node.
        from: usize,
        /// Target primary node.
        to: usize,
        /// The new epoch.
        epoch: u32,
    },
    /// An unreplicated shard's primary daemon restarted and a fresh
    /// worker generation resumed serving its store.
    Revived {
        /// When.
        at: SimTime,
        /// Affected shard.
        shard: usize,
        /// The reviving primary node.
        node: usize,
        /// The new epoch.
        epoch: u32,
    },
}

impl ClusterEvent {
    /// Deterministic one-line rendering.
    pub fn render(&self) -> String {
        let ps = |t: &SimTime| t.since(SimTime::ZERO).as_ps();
        match self {
            ClusterEvent::Promoted(p) => p.render(),
            ClusterEvent::BackupLost { at, shard, node } => {
                format!("backup-lost shard={shard} node{node} at_ps={}", ps(at))
            }
            ClusterEvent::Rearmed {
                at,
                shard,
                primary,
                backup,
                epoch,
            } => format!(
                "rearm shard={shard} epoch={epoch} primary=node{primary} backup=node{backup} at_ps={}",
                ps(at)
            ),
            ClusterEvent::Migrated {
                at,
                shard,
                from,
                to,
                epoch,
            } => format!(
                "migrate shard={shard} epoch={epoch} node{from}->node{to} at_ps={}",
                ps(at)
            ),
            ClusterEvent::Revived {
                at,
                shard,
                node,
                epoch,
            } => format!("revive shard={shard} epoch={epoch} node{node} at_ps={}", ps(at)),
        }
    }
}

/// The live replication attachment of a shard: where the replica
/// lives, its store, and the promotion signal into its receiver.
#[derive(Debug)]
pub(crate) struct BackupLink {
    /// Backup node index.
    pub(crate) node: usize,
    /// The replica store (authoritative after promotion).
    pub(crate) store: Arc<Mutex<ShardStore>>,
    /// Watchdog → receiver: "serve under this epoch".
    pub(crate) promo: SimChannel<u32>,
}

/// Per-shard routing and transition state, all under one lock so a
/// route change and its store wiring are atomic.
struct ShardState {
    route: ShardRoute,
    /// The primary node's daemon restart count when the route was
    /// established — a restart since then means a crash the liveness
    /// poll may have missed entirely.
    primary_restarts: u64,
    /// The authoritative store of the current generation.
    store: Arc<Mutex<ShardStore>>,
    /// The live backup attachment, if any.
    backup: Option<BackupLink>,
    /// A write freeze is in force (migration/re-arm delta drain).
    frozen: bool,
    /// Mutations currently inside apply+replicate.
    writers: usize,
    /// A transition orchestrator owns this shard right now.
    busy: bool,
    /// No re-arm/migration before this instant (post-failure
    /// cooldown).
    not_before: SimTime,
}

/// Outcome of trying to claim a queued migration.
enum Claim {
    /// Claimed: the shard is marked busy; spawn this sync.
    Start(Transition),
    /// Not startable right now; retry at the next poll.
    Keep,
    /// Already satisfied (primary is the target); drop it.
    Drop,
}

/// What a finished sync installs under the activation CAS.
pub(crate) enum Activation {
    /// Re-arm: same primary, new backup, replication back on.
    Rearm {
        /// The new backup attachment.
        link: BackupLink,
    },
    /// Migration: new primary serving the synced store, unreplicated
    /// until the watchdog re-arms.
    Migrate {
        /// Target primary node.
        to: usize,
        /// The synced store the target serves.
        store: Arc<Mutex<ShardStore>>,
    },
}

/// A running KV cluster: spawn once per system, then create
/// [`SvcClient`](crate::SvcClient)s against it.
pub struct SvcCluster {
    system: Arc<ShrimpSystem>,
    directory: Arc<SrpcDirectory>,
    cfg: SvcConfig,
    ring: Arc<ShardRing>,
    iface: Interface,
    states: Mutex<Vec<ShardState>>,
    events: Mutex<Vec<ClusterEvent>>,
    /// Planned migrations awaiting a healthy window, oldest first.
    migrations: Mutex<VecDeque<(usize, usize)>>,
    /// How many system fault-plan directives have been consumed.
    directive_cursor: AtomicUsize,
    /// Monotonic tag making transition process/endpoint names unique.
    generations: AtomicUsize,
    shutdown: AtomicBool,
    clients: AtomicUsize,
    /// Epoch-0 replication channels, one per chained shard (later
    /// generations create their own).
    initial_repl: Vec<Option<SimChannel<ReplReq>>>,
    /// Per-shard write handle of the current generation's value-slot
    /// table (read-through). Locked strictly *after* the shard's store
    /// lock, never before.
    rt_regions: Mutex<Vec<Option<RtRegion>>>,
    /// `(shard, epoch)` → `(node, buffer)` of each generation's
    /// exported slot table, for clients to import.
    rt_pubs: Mutex<HashMap<(usize, u32), (usize, BufferName)>>,
}

impl std::fmt::Debug for SvcCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SvcCluster")
            .field("shards", &self.cfg.shards)
            .finish_non_exhaustive()
    }
}

impl SvcCluster {
    /// Spawn the serving processes (per shard: serve workers, the
    /// replication orchestrator, the backup receiver; plus one
    /// watchdog) onto the system's kernel and return the cluster
    /// handle.
    ///
    /// # Panics
    ///
    /// Panics when the config asks for more shards than nodes, or for
    /// replication on a single-node system.
    pub fn spawn(system: &Arc<ShrimpSystem>, cfg: SvcConfig) -> Arc<SvcCluster> {
        let nodes = system.len();
        assert!(
            cfg.shards >= 1 && cfg.shards <= nodes,
            "shards must fit nodes"
        );
        assert!(
            !cfg.replication || nodes >= 2,
            "replication needs at least two nodes"
        );
        let iface = parse_interface(KV_IDL).expect("the KV IDL is a static string; it parses");
        let mut states = Vec::with_capacity(cfg.shards);
        let mut initial_repl = Vec::with_capacity(cfg.shards);
        for s in 0..cfg.shards {
            let primary = s % nodes;
            let backup = cfg.replication.then(|| (s + 1) % nodes);
            states.push(ShardState {
                route: ShardRoute {
                    primary,
                    backup,
                    epoch: 0,
                },
                primary_restarts: system.daemon(primary).restarts(),
                store: Arc::new(Mutex::new(ShardStore::new())),
                backup: backup.map(|node| BackupLink {
                    node,
                    store: Arc::new(Mutex::new(ShardStore::new())),
                    promo: SimChannel::new(),
                }),
                frozen: false,
                writers: 0,
                busy: false,
                not_before: SimTime::ZERO,
            });
            initial_repl.push(backup.map(|_| SimChannel::new()));
        }
        let cluster = Arc::new(SvcCluster {
            system: Arc::clone(system),
            directory: SrpcDirectory::new(),
            ring: Arc::new(ShardRing::new(cfg.shards)),
            iface,
            states: Mutex::new(states),
            events: Mutex::new(Vec::new()),
            migrations: Mutex::new(VecDeque::new()),
            directive_cursor: AtomicUsize::new(0),
            generations: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            clients: AtomicUsize::new(0),
            initial_repl,
            rt_regions: Mutex::new((0..cfg.shards).map(|_| None).collect()),
            rt_pubs: Mutex::new(HashMap::new()),
            cfg,
        });
        for s in 0..cluster.cfg.shards {
            server::spawn_shard(&cluster, s);
        }
        server::spawn_watchdog(&cluster);
        cluster
    }

    /// The epoch-qualified service name a shard's workers listen on.
    pub fn service(shard: usize, epoch: u32) -> String {
        format!("kv{shard}e{epoch}")
    }

    /// The epoch-qualified name of a shard's read-only hedge service
    /// on the backup replica.
    pub fn hedge_service(shard: usize, epoch: u32) -> String {
        format!("kvh{shard}e{epoch}")
    }

    /// The system the cluster runs on.
    pub fn system(&self) -> &Arc<ShrimpSystem> {
        &self.system
    }

    /// The RPC binder directory.
    pub fn directory(&self) -> &Arc<SrpcDirectory> {
        &self.directory
    }

    /// The cluster configuration.
    pub fn config(&self) -> &SvcConfig {
        &self.cfg
    }

    /// The consistent-hash routing ring.
    pub fn ring(&self) -> &Arc<ShardRing> {
        &self.ring
    }

    /// The parsed KV interface.
    pub(crate) fn iface(&self) -> &Interface {
        &self.iface
    }

    /// A shard's current route.
    pub fn route(&self, shard: usize) -> ShardRoute {
        self.states.lock()[shard].route
    }

    /// The epoch-0 replication channel of a chained shard.
    pub(crate) fn initial_repl(&self, shard: usize) -> Option<SimChannel<ReplReq>> {
        self.initial_repl[shard].clone()
    }

    /// A fresh unique tag for transition process and endpoint names.
    pub(crate) fn next_gen(&self) -> usize {
        self.generations.fetch_add(1, Ordering::SeqCst)
    }

    /// Every promotion so far, in order.
    pub fn promotions(&self) -> Vec<Promotion> {
        self.events
            .lock()
            .iter()
            .filter_map(|e| match e {
                ClusterEvent::Promoted(p) => Some(*p),
                _ => None,
            })
            .collect()
    }

    /// Deterministic rendering of the promotion sequence — the
    /// failover-determinism fingerprint (promotions only; see
    /// [`SvcCluster::event_log`] for the full trail).
    pub fn promotion_log(&self) -> String {
        let mut out = String::new();
        for p in self.promotions() {
            out.push_str(&p.render());
            out.push('\n');
        }
        out
    }

    /// Every routing transition so far, in order.
    pub fn events(&self) -> Vec<ClusterEvent> {
        self.events.lock().clone()
    }

    /// Deterministic rendering of the whole transition trail.
    pub fn event_log(&self) -> String {
        let events = self.events.lock();
        let mut out = String::new();
        for e in events.iter() {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }

    /// The store currently authoritative for a shard (follows
    /// promotions and migrations).
    pub fn authoritative_store(&self, shard: usize) -> Arc<Mutex<ShardStore>> {
        Arc::clone(&self.states.lock()[shard].store)
    }

    /// The live backup replica's store, if the shard is currently
    /// replicated (for replication-equality checks).
    pub fn backup_store(&self, shard: usize) -> Option<Arc<Mutex<ShardStore>>> {
        self.states.lock()[shard]
            .backup
            .as_ref()
            .map(|b| Arc::clone(&b.store))
    }

    /// The live backup replica's promotion channel (construction-time
    /// wiring for the epoch-0 receiver).
    pub(crate) fn backup_promo(&self, shard: usize) -> Option<SimChannel<u32>> {
        self.states.lock()[shard]
            .backup
            .as_ref()
            .map(|b| b.promo.clone())
    }

    /// FNV-1a digest across every shard's authoritative store — the
    /// cluster-state fingerprint benches commit.
    pub fn state_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for s in 0..self.cfg.shards {
            let d = self.authoritative_store(s).lock().digest();
            for b in d.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }

    /// Announce `n` more client processes whose completion gates
    /// cluster shutdown.
    pub fn register_clients(&self, n: usize) {
        self.clients.fetch_add(n, Ordering::SeqCst);
    }

    /// A registered client finished; the last one out triggers
    /// shutdown so the watchdog and pollers stop scheduling wake-ups
    /// and the kernel can quiesce.
    pub fn client_done(&self) {
        if self.clients.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.begin_shutdown();
        }
    }

    /// Ask every polling service process to exit at its next bounded
    /// wait.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has begun.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Queue a planned handoff of `shard`'s primary to node `to`. The
    /// watchdog starts the sync at its next poll once the shard is
    /// healthy and un-frozen; the handoff completes with an epoch bump
    /// and a [`ClusterEvent::Migrated`] record. Scripted fault-plan
    /// `Directive { op: "migrate", a: shard, b: to }` entries land in
    /// the same queue.
    pub fn request_migration(&self, shard: usize, to: usize) {
        assert!(shard < self.cfg.shards, "no such shard");
        assert!(to < self.system.len(), "no such node");
        self.migrations.lock().push_back((shard, to));
    }

    /// Record one transition.
    pub(crate) fn record_event(&self, e: ClusterEvent) {
        self.events.lock().push(e);
    }

    // ----- read-through slot tables ---------------------------------

    /// Install a generation's slot-table write handle. A stale
    /// exporter (its epoch already deposed) must never clobber a newer
    /// table, so installation keeps the highest epoch.
    pub(crate) fn install_rt(&self, shard: usize, region: RtRegion) {
        let mut regions = self.rt_regions.lock();
        match &regions[shard] {
            Some(r) if r.epoch >= region.epoch => {}
            _ => regions[shard] = Some(region),
        }
    }

    /// Publish one applied mutation to the shard's slot table. Called
    /// with the shard's store lock held, so slot images land in store
    /// sequence order; a no-op until the epoch's exporter has
    /// installed its table (the exporter then seeds every entry under
    /// the same lock).
    pub(crate) fn rt_publish(&self, shard: usize, epoch: u32, op: &Op, seq: u64) {
        let regions = self.rt_regions.lock();
        if let Some(r) = regions[shard].as_ref() {
            if r.epoch == epoch {
                match op {
                    Op::Put { key, val } => r.write_slot(key, seq, Some(val)),
                    Op::Del { key } => r.write_slot(key, seq, None),
                }
            }
        }
    }

    /// Advertise a generation's exported slot table to clients.
    pub(crate) fn set_rt_pub(&self, shard: usize, epoch: u32, node: usize, name: BufferName) {
        self.rt_pubs.lock().insert((shard, epoch), (node, name));
    }

    /// Where a generation's slot table lives, if its exporter has
    /// published it.
    pub(crate) fn rt_pub(&self, shard: usize, epoch: u32) -> Option<(usize, BufferName)> {
        self.rt_pubs.lock().get(&(shard, epoch)).copied()
    }

    // ----- write freeze ---------------------------------------------

    /// Admit one mutation under `epoch`. Blocks (in virtual time)
    /// while the shard is frozen for a delta drain; returns `false`
    /// when the generation was deposed or shutdown began — the caller
    /// must drop the mutation (its reply is fenced anyway).
    pub(crate) fn enter_write(&self, ctx: &Ctx, shard: usize, epoch: u32) -> bool {
        loop {
            if self.is_shutdown() {
                return false;
            }
            {
                let mut states = self.states.lock();
                let st = &mut states[shard];
                if st.route.epoch != epoch {
                    return false;
                }
                if !st.frozen {
                    st.writers += 1;
                    return true;
                }
            }
            ctx.advance(FREEZE_POLL);
        }
    }

    /// The mutation admitted by [`enter_write`](Self::enter_write)
    /// finished (applied and replicated, or degraded).
    pub(crate) fn exit_write(&self, shard: usize) {
        self.states.lock()[shard].writers -= 1;
    }

    /// Freeze writes on a shard and drain the mutations already
    /// admitted. Returns `false` (leaving the freeze up — the caller
    /// unfreezes on every path) when shutdown interrupts the drain.
    pub(crate) fn freeze_writes(&self, ctx: &Ctx, shard: usize) -> bool {
        self.states.lock()[shard].frozen = true;
        loop {
            if self.is_shutdown() {
                return false;
            }
            if self.states.lock()[shard].writers == 0 {
                return true;
            }
            ctx.advance(FREEZE_POLL);
        }
    }

    /// Lift a write freeze.
    pub(crate) fn unfreeze_writes(&self, shard: usize) {
        self.states.lock()[shard].frozen = false;
    }

    // ----- transitions ----------------------------------------------

    /// Replication for this shard degraded: drop the backup from the
    /// route so the watchdog can never promote a stale replica, and
    /// start the re-arm cooldown.
    pub(crate) fn demote_backup(&self, now: SimTime, shard: usize) {
        let lost = {
            let mut states = self.states.lock();
            let st = &mut states[shard];
            st.not_before = now + self.cfg.rearm_grace;
            match st.backup.take() {
                Some(link) => {
                    st.route.backup = None;
                    Some(link.node)
                }
                None => None,
            }
        };
        if let Some(node) = lost {
            self.record_event(ClusterEvent::BackupLost {
                at: now,
                shard,
                node,
            });
        }
    }

    /// Watchdog step: if the primary's daemon is down — or restarted
    /// since the route was established — and a live backup exists,
    /// promote it under a bumped epoch. Returns whether a promotion
    /// happened.
    pub(crate) fn promote_if_down(&self, ctx: &Ctx, shard: usize) -> bool {
        let (promotion, promo) = {
            let mut states = self.states.lock();
            let st = &mut states[shard];
            if st.backup.is_none() {
                return false;
            }
            let d = self.system.daemon(st.route.primary);
            if !d.is_down() && d.restarts() == st.primary_restarts {
                return false;
            }
            let link = st.backup.take().expect("checked above");
            let from = st.route.primary;
            let epoch = st.route.epoch + 1;
            st.route = ShardRoute {
                primary: link.node,
                backup: None,
                epoch,
            };
            st.primary_restarts = self.system.daemon(link.node).restarts();
            st.store = Arc::clone(&link.store);
            st.not_before = ctx.now() + self.cfg.rearm_grace;
            (
                Promotion {
                    at: ctx.now(),
                    shard,
                    from,
                    to: link.node,
                    epoch,
                },
                link.promo,
            )
        };
        self.record_event(ClusterEvent::Promoted(promotion));
        promo.send(&ctx.handle(), promotion.epoch);
        true
    }

    /// Watchdog step: an unreplicated shard whose primary daemon
    /// restarted gets a fresh worker generation on the same store.
    /// Returns the `(epoch, node, store)` to respawn under.
    pub(crate) fn revive_if_restarted(
        &self,
        ctx: &Ctx,
        shard: usize,
    ) -> Option<(u32, usize, Arc<Mutex<ShardStore>>)> {
        let mut states = self.states.lock();
        let st = &mut states[shard];
        if st.backup.is_some() || st.busy {
            return None;
        }
        let d = self.system.daemon(st.route.primary);
        if d.is_down() || d.restarts() == st.primary_restarts {
            return None;
        }
        st.route.epoch += 1;
        st.primary_restarts = d.restarts();
        let out = (st.route.epoch, st.route.primary, Arc::clone(&st.store));
        let event = ClusterEvent::Revived {
            at: ctx.now(),
            shard,
            node: st.route.primary,
            epoch: st.route.epoch,
        };
        drop(states);
        self.record_event(event);
        Some(out)
    }

    /// Watchdog step: drain newly fired fault-plan migration
    /// directives into the queue, then claim every queued migration
    /// whose shard is healthy and idle. Claimed entries are marked
    /// busy; the caller spawns their sync orchestrators.
    pub(crate) fn claim_migrations(&self, ctx: &Ctx) -> Vec<(usize, Transition)> {
        let dirs = self.system.directives();
        let seen = self.directive_cursor.swap(dirs.len(), Ordering::SeqCst);
        {
            let mut q = self.migrations.lock();
            for (_, op, a, b) in dirs.into_iter().skip(seen) {
                if op == "migrate"
                    && (a as usize) < self.cfg.shards
                    && (b as usize) < self.system.len()
                {
                    q.push_back((a as usize, b as usize));
                }
            }
        }
        let mut claimed = Vec::new();
        let mut keep = VecDeque::new();
        let pending = {
            let mut q = self.migrations.lock();
            std::mem::take(&mut *q)
        };
        for (shard, to) in pending {
            match self.claim_migration(ctx, shard, to) {
                Claim::Start(t) => claimed.push((shard, t)),
                Claim::Keep => keep.push_back((shard, to)),
                Claim::Drop => {}
            }
        }
        let mut q = self.migrations.lock();
        while let Some(e) = keep.pop_front() {
            q.push_back(e);
        }
        claimed
    }

    /// Try to claim one migration: the source primary and the target
    /// daemon must be alive, the shard idle and past its cooldown.
    fn claim_migration(&self, ctx: &Ctx, shard: usize, to: usize) -> Claim {
        let mut states = self.states.lock();
        let st = &mut states[shard];
        if st.route.primary == to {
            return Claim::Drop;
        }
        if st.busy || st.frozen || ctx.now() < st.not_before {
            return Claim::Keep;
        }
        let p = self.system.daemon(st.route.primary);
        if p.is_down() || p.restarts() != st.primary_restarts {
            return Claim::Keep;
        }
        if self.system.daemon(to).is_down() {
            return Claim::Keep;
        }
        st.busy = true;
        Claim::Start(Transition::Migrate {
            expect_epoch: st.route.epoch,
            from: st.route.primary,
            to,
        })
    }

    /// Watchdog step: an unreplicated, healthy, idle shard past its
    /// cooldown gets a new backup — the next alive node after the
    /// primary. Marks the shard busy and returns the sync transition.
    pub(crate) fn claim_rearm(&self, ctx: &Ctx, shard: usize) -> Option<Transition> {
        if !self.cfg.replication {
            return None;
        }
        let nodes = self.system.len();
        let mut states = self.states.lock();
        let st = &mut states[shard];
        if st.backup.is_some() || st.busy || st.frozen || ctx.now() < st.not_before {
            return None;
        }
        let p = self.system.daemon(st.route.primary);
        if p.is_down() || p.restarts() != st.primary_restarts {
            return None;
        }
        let to = (1..nodes)
            .map(|i| (st.route.primary + i) % nodes)
            .find(|&n| !self.system.daemon(n).is_down())?;
        st.busy = true;
        Some(Transition::Rearm {
            expect_epoch: st.route.epoch,
            from: st.route.primary,
            to,
        })
    }

    /// A transition orchestrator failed or was deposed: release the
    /// shard and start the cooldown.
    pub(crate) fn abort_transition(&self, now: SimTime, shard: usize) {
        let mut states = self.states.lock();
        let st = &mut states[shard];
        st.busy = false;
        st.not_before = now + self.cfg.rearm_grace;
    }

    /// The activation CAS: install a finished sync if and only if the
    /// route epoch is still the one the sync started under (a
    /// concurrent promotion wins otherwise). Returns the new epoch on
    /// success.
    pub(crate) fn activate(
        &self,
        ctx: &Ctx,
        shard: usize,
        expect_epoch: u32,
        activation: Activation,
    ) -> Option<u32> {
        let (event, epoch) = {
            let mut states = self.states.lock();
            let st = &mut states[shard];
            st.busy = false;
            if st.route.epoch != expect_epoch {
                st.not_before = ctx.now() + self.cfg.rearm_grace;
                return None;
            }
            let epoch = expect_epoch + 1;
            st.route.epoch = epoch;
            let event = match activation {
                Activation::Rearm { link } => {
                    let backup = link.node;
                    st.route.backup = Some(backup);
                    st.backup = Some(link);
                    ClusterEvent::Rearmed {
                        at: ctx.now(),
                        shard,
                        primary: st.route.primary,
                        backup,
                        epoch,
                    }
                }
                Activation::Migrate { to, store } => {
                    let from = st.route.primary;
                    st.route.primary = to;
                    st.route.backup = None;
                    st.primary_restarts = self.system.daemon(to).restarts();
                    st.store = store;
                    st.backup = None;
                    ClusterEvent::Migrated {
                        at: ctx.now(),
                        shard,
                        from,
                        to,
                        epoch,
                    }
                }
            };
            (event, epoch)
        };
        self.record_event(event);
        Some(epoch)
    }
}
