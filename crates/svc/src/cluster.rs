//! Cluster assembly: shard placement, routing epochs, the watchdog's
//! promotion protocol, and shutdown choreography.
//!
//! Placement is *chained*: with `N` nodes and `N` shards, node `s`
//! runs the primary of shard `s` and the backup replica of shard
//! `(s - 1) mod N` — the paper-era "one server per node" layout where
//! replication traffic is one hop of deliberate-update deposits along
//! the ring.
//!
//! Failover contract: a shard's *route* is `(primary, backup, epoch)`.
//! The watchdog polls daemon liveness every
//! [`watch_interval`](SvcConfig::watch_interval); when a primary's
//! daemon is down (or has restarted since the route was established —
//! a crash the poll missed), it bumps the epoch, promotes the backup,
//! records a [`Promotion`], and signals the backup process to start
//! serving under the epoch-qualified service name. Clients discover
//! the move through their bounded-wait timeouts and re-bind against
//! the refreshed route. Epoch-qualified names mean a deposed primary
//! can never answer a current-epoch request.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::ShrimpSystem;
use shrimp_sim::{Ctx, SimChannel, SimDur, SimTime};
use shrimp_srpc::{parse_interface, Interface, SrpcDirectory};

use crate::server::{self, ReplLink, ReplReq};
use crate::store::ShardStore;
use crate::ShardRing;

/// The KV fast-path interface: fixed-size slots keep the marshaling
/// run consecutive, so a whole request is one combined packet.
const KV_IDL: &str = "interface Kv {
    put(in key: opaque[32], in klen: u32, in val: opaque[64], in vlen: u32,
        out seq: u32, out existed: bool);
    get(in key: opaque[32], in klen: u32,
        out seq: u32, out found: bool, out val: opaque[64], out vlen: u32);
    del(in key: opaque[32], in klen: u32,
        out seq: u32, out existed: bool);
}";

/// Cluster shape and protocol timing knobs.
#[derive(Debug, Clone)]
pub struct SvcConfig {
    /// Number of shards (≤ nodes; the chained layout uses one per
    /// node).
    pub shards: usize,
    /// Whether each shard keeps a chained backup replica.
    pub replication: bool,
    /// Watchdog poll cadence; also the backup's bounded-wait slice
    /// between promotion/shutdown checks.
    pub watch_interval: SimDur,
    /// Serve workers pre-spawned per shard per epoch — the maximum
    /// concurrent client bindings a shard accepts.
    pub conns_per_shard: usize,
    /// Replication channel depth (records in flight).
    pub repl_slots: u32,
    /// Client-side bound on the binder exchange.
    pub bind_timeout: SimDur,
    /// Client-side bound on one RPC's reply wait.
    pub op_timeout: SimDur,
    /// Client back-off between retries (long enough for a watchdog
    /// poll to have promoted).
    pub retry_backoff: SimDur,
    /// Client attempt budget per operation.
    pub max_attempts: u32,
}

impl SvcConfig {
    /// The chained one-shard-per-node layout for an `n`-node system.
    pub fn chained(nodes: usize) -> SvcConfig {
        SvcConfig {
            shards: nodes,
            replication: nodes >= 2,
            watch_interval: SimDur::from_us(100.0),
            conns_per_shard: 2 * nodes,
            repl_slots: 4,
            bind_timeout: SimDur::from_us(1_000.0),
            op_timeout: SimDur::from_us(400.0),
            retry_backoff: SimDur::from_us(250.0),
            max_attempts: 16,
        }
    }
}

/// A shard's current route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRoute {
    /// Node index of the serving primary.
    pub primary: usize,
    /// Node index of the backup replica, if one survives.
    pub backup: Option<usize>,
    /// Routing epoch — bumped at every promotion; service names are
    /// epoch-qualified.
    pub epoch: u32,
}

/// One recorded failover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Promotion {
    /// Virtual time the watchdog promoted.
    pub at: SimTime,
    /// Affected shard.
    pub shard: usize,
    /// Deposed primary node.
    pub from: usize,
    /// Promoted backup node.
    pub to: usize,
    /// The new epoch.
    pub epoch: u32,
}

impl Promotion {
    /// Deterministic one-line rendering.
    pub fn render(&self) -> String {
        format!(
            "promote shard={} epoch={} node{}->node{} at_ps={}",
            self.shard,
            self.epoch,
            self.from,
            self.to,
            self.at.since(SimTime::ZERO).as_ps()
        )
    }
}

#[derive(Debug)]
struct RouteState {
    route: ShardRoute,
    /// The primary node's daemon restart count when the route was
    /// established — a restart since then means a crash the liveness
    /// poll may have missed entirely.
    primary_restarts: u64,
}

/// Per-shard runtime state shared between the serving processes.
pub(crate) struct ShardRuntime {
    /// The epoch-0 primary's store.
    pub(crate) primary_store: Arc<Mutex<ShardStore>>,
    /// The chained replica (authoritative after promotion).
    pub(crate) backup_store: Arc<Mutex<ShardStore>>,
    /// Watchdog → backup: "serve under this epoch".
    pub(crate) promo: SimChannel<u32>,
    /// Export/import rendezvous for the replication channel.
    pub(crate) link: Arc<ReplLink>,
    /// Serve workers → replicator.
    pub(crate) repl: SimChannel<ReplReq>,
}

/// A running KV cluster: spawn once per system, then create
/// [`SvcClient`](crate::SvcClient)s against it.
pub struct SvcCluster {
    system: Arc<ShrimpSystem>,
    directory: Arc<SrpcDirectory>,
    cfg: SvcConfig,
    ring: Arc<ShardRing>,
    iface: Interface,
    routes: Mutex<Vec<RouteState>>,
    promotions: Mutex<Vec<Promotion>>,
    shutdown: AtomicBool,
    clients: AtomicUsize,
    pub(crate) shards: Vec<ShardRuntime>,
}

impl std::fmt::Debug for SvcCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SvcCluster")
            .field("shards", &self.cfg.shards)
            .finish_non_exhaustive()
    }
}

impl SvcCluster {
    /// Spawn the serving processes (per shard: serve workers, the
    /// replicator, the backup applier; plus one watchdog) onto the
    /// system's kernel and return the cluster handle.
    ///
    /// # Panics
    ///
    /// Panics when the config asks for more shards than nodes, or for
    /// replication on a single-node system.
    pub fn spawn(system: &Arc<ShrimpSystem>, cfg: SvcConfig) -> Arc<SvcCluster> {
        let nodes = system.len();
        assert!(
            cfg.shards >= 1 && cfg.shards <= nodes,
            "shards must fit nodes"
        );
        assert!(
            !cfg.replication || nodes >= 2,
            "replication needs at least two nodes"
        );
        let iface = parse_interface(KV_IDL).expect("KV IDL parses");
        let mut routes = Vec::with_capacity(cfg.shards);
        let mut shards = Vec::with_capacity(cfg.shards);
        for s in 0..cfg.shards {
            let primary = s % nodes;
            let backup = cfg.replication.then(|| (s + 1) % nodes);
            routes.push(RouteState {
                route: ShardRoute {
                    primary,
                    backup,
                    epoch: 0,
                },
                primary_restarts: system.daemon(primary).restarts(),
            });
            shards.push(ShardRuntime {
                primary_store: Arc::new(Mutex::new(ShardStore::new())),
                backup_store: Arc::new(Mutex::new(ShardStore::new())),
                promo: SimChannel::new(),
                link: Arc::new(ReplLink::default()),
                repl: SimChannel::new(),
            });
        }
        let cluster = Arc::new(SvcCluster {
            system: Arc::clone(system),
            directory: SrpcDirectory::new(),
            ring: Arc::new(ShardRing::new(cfg.shards)),
            iface,
            routes: Mutex::new(routes),
            promotions: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            clients: AtomicUsize::new(0),
            shards,
            cfg,
        });
        for s in 0..cluster.cfg.shards {
            server::spawn_shard(&cluster, s);
        }
        server::spawn_watchdog(&cluster);
        cluster
    }

    /// The epoch-qualified service name a shard's workers listen on.
    pub fn service(shard: usize, epoch: u32) -> String {
        format!("kv{shard}e{epoch}")
    }

    /// The system the cluster runs on.
    pub fn system(&self) -> &Arc<ShrimpSystem> {
        &self.system
    }

    /// The RPC binder directory.
    pub fn directory(&self) -> &Arc<SrpcDirectory> {
        &self.directory
    }

    /// The cluster configuration.
    pub fn config(&self) -> &SvcConfig {
        &self.cfg
    }

    /// The consistent-hash routing ring.
    pub fn ring(&self) -> &Arc<ShardRing> {
        &self.ring
    }

    /// The parsed KV interface.
    pub(crate) fn iface(&self) -> &Interface {
        &self.iface
    }

    /// A shard's current route.
    pub fn route(&self, shard: usize) -> ShardRoute {
        self.routes.lock()[shard].route
    }

    /// Every promotion so far, in order.
    pub fn promotions(&self) -> Vec<Promotion> {
        self.promotions.lock().clone()
    }

    /// Deterministic rendering of the promotion sequence — the
    /// failover-determinism fingerprint.
    pub fn promotion_log(&self) -> String {
        let promos = self.promotions.lock();
        let mut out = String::new();
        for p in promos.iter() {
            out.push_str(&p.render());
            out.push('\n');
        }
        out
    }

    /// The store currently authoritative for a shard (the promoted
    /// replica after failover, the primary's otherwise).
    pub fn authoritative_store(&self, shard: usize) -> Arc<Mutex<ShardStore>> {
        let rt = &self.shards[shard];
        if self.route(shard).epoch > 0 {
            Arc::clone(&rt.backup_store)
        } else {
            Arc::clone(&rt.primary_store)
        }
    }

    /// The backup replica's store (for replication-equality checks).
    pub fn backup_store(&self, shard: usize) -> Arc<Mutex<ShardStore>> {
        Arc::clone(&self.shards[shard].backup_store)
    }

    /// FNV-1a digest across every shard's authoritative store — the
    /// cluster-state fingerprint benches commit.
    pub fn state_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for s in 0..self.cfg.shards {
            let d = self.authoritative_store(s).lock().digest();
            for b in d.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }

    /// Announce `n` more client processes whose completion gates
    /// cluster shutdown.
    pub fn register_clients(&self, n: usize) {
        self.clients.fetch_add(n, Ordering::SeqCst);
    }

    /// A registered client finished; the last one out triggers
    /// shutdown so the watchdog and backup pollers stop scheduling
    /// wake-ups and the kernel can quiesce.
    pub fn client_done(&self) {
        if self.clients.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.begin_shutdown();
        }
    }

    /// Ask every polling service process to exit at its next bounded
    /// wait.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has begun.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Replication for this shard degraded: clear the backup from the
    /// route so the watchdog can never promote a stale replica.
    pub(crate) fn demote_backup(&self, shard: usize) {
        self.routes.lock()[shard].route.backup = None;
    }

    /// Watchdog step for one shard: if the primary's daemon is down —
    /// or restarted since the route was established — and a backup
    /// exists, promote it under a bumped epoch. Returns whether a
    /// promotion happened.
    pub(crate) fn promote_if_down(&self, ctx: &Ctx, shard: usize) -> bool {
        let promotion = {
            let mut routes = self.routes.lock();
            let rs = &mut routes[shard];
            let Some(backup) = rs.route.backup else {
                return false;
            };
            let d = self.system.daemon(rs.route.primary);
            if !d.is_down() && d.restarts() == rs.primary_restarts {
                return false;
            }
            let from = rs.route.primary;
            let epoch = rs.route.epoch + 1;
            rs.route = ShardRoute {
                primary: backup,
                backup: None,
                epoch,
            };
            rs.primary_restarts = self.system.daemon(backup).restarts();
            Promotion {
                at: ctx.now(),
                shard,
                from,
                to: backup,
                epoch,
            }
        };
        self.promotions.lock().push(promotion);
        self.shards[shard]
            .promo
            .send(&ctx.handle(), promotion.epoch);
        true
    }
}
