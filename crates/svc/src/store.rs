//! The per-shard store: a hash map with per-entry apply sequence
//! numbers and tombstones.
//!
//! The sequence number is the replication and verification backbone:
//! the primary assigns one per mutation under the store lock, the
//! backup applies records in sequence order, and a client's ack
//! carries the sequence — so "zero lost acknowledged writes" is
//! checkable as *for every acked write, the surviving store's entry
//! for that key has a sequence at least as new*.

use std::collections::HashMap;

/// Maximum key length the wire format carries (fixed `opaque[32]`
/// slot in the RPC interface).
pub const MAX_KEY: usize = 32;

/// Maximum value length the wire format carries (fixed `opaque[64]`
/// slot in the RPC interface).
pub const MAX_VAL: usize = 64;

/// One store entry as enumerated by [`ShardStore::entries`] /
/// [`ShardStore::entries_since`]: key, apply sequence, and value
/// (`None` = tombstone).
pub type StoreEntry = (Vec<u8>, u64, Option<Vec<u8>>);

/// A mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Insert or overwrite `key`.
    Put {
        /// Key bytes (≤ [`MAX_KEY`]).
        key: Vec<u8>,
        /// Value bytes (≤ [`MAX_VAL`]).
        val: Vec<u8>,
    },
    /// Delete `key` (leaves a sequenced tombstone).
    Del {
        /// Key bytes (≤ [`MAX_KEY`]).
        key: Vec<u8>,
    },
}

impl Op {
    /// The key the mutation targets.
    pub fn key(&self) -> &[u8] {
        match self {
            Op::Put { key, .. } | Op::Del { key } => key,
        }
    }
}

/// Outcome of applying one mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Applied {
    /// The shard-local apply sequence assigned to the mutation.
    pub seq: u64,
    /// Whether the key held a live value beforehand.
    pub existed: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    seq: u64,
    /// `None` is a tombstone: the key was deleted at `seq`.
    val: Option<Vec<u8>>,
}

/// One shard's key-value state.
#[derive(Debug, Default)]
pub struct ShardStore {
    map: HashMap<Vec<u8>, Entry>,
    last_seq: u64,
}

impl ShardStore {
    /// An empty store.
    pub fn new() -> ShardStore {
        ShardStore::default()
    }

    /// Apply a mutation as the primary: assigns the next sequence.
    pub fn apply_next(&mut self, op: &Op) -> Applied {
        let seq = self.last_seq + 1;
        self.apply_at(seq, op)
    }

    /// Apply a mutation at an externally assigned sequence (the
    /// backup's replay path). `seq` must be monotonically increasing
    /// across calls.
    pub fn apply_at(&mut self, seq: u64, op: &Op) -> Applied {
        self.last_seq = seq;
        let (key, val) = match op {
            Op::Put { key, val } => (key, Some(val.clone())),
            Op::Del { key } => (key, None),
        };
        let prev = self.map.insert(key.clone(), Entry { seq, val });
        Applied {
            seq,
            existed: prev.map(|e| e.val.is_some()).unwrap_or(false),
        }
    }

    /// Load one entry from a snapshot/delta stream: inserts the entry
    /// at its original sequence without claiming the sequence space
    /// between (entries arrive sorted by key, not by sequence). The
    /// stream's closing cut record fixes `last_seq` exactly via
    /// [`ShardStore::set_last_seq`].
    pub fn load_entry(&mut self, seq: u64, key: Vec<u8>, val: Option<Vec<u8>>) {
        self.last_seq = self.last_seq.max(seq);
        self.map.insert(key, Entry { seq, val });
    }

    /// Pin the apply sequence at a snapshot cut (must be at least the
    /// highest loaded entry's sequence).
    pub fn set_last_seq(&mut self, seq: u64) {
        debug_assert!(seq >= self.last_seq, "a cut never rewinds the store");
        self.last_seq = seq;
    }

    /// Read a key: `(entry sequence, value)`. A deleted key reports
    /// its tombstone's sequence with `None`; a never-written key
    /// reports `(0, None)`.
    pub fn get(&self, key: &[u8]) -> (u64, Option<&[u8]>) {
        match self.map.get(key) {
            Some(e) => (e.seq, e.val.as_deref()),
            None => (0, None),
        }
    }

    /// Highest sequence applied so far.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Number of live (non-tombstone) entries.
    pub fn len(&self) -> usize {
        self.map.values().filter(|e| e.val.is_some()).count()
    }

    /// True when no live entry exists.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every entry — including tombstones — sorted by key, for
    /// reference comparison in tests.
    pub fn entries(&self) -> Vec<StoreEntry> {
        let mut out: Vec<_> = self
            .map
            .iter()
            .map(|(k, e)| (k.clone(), e.seq, e.val.clone()))
            .collect();
        out.sort();
        out
    }

    /// Entries (tombstones included) applied after sequence `cut`,
    /// sorted by key — the delta a migration or re-replication sync
    /// streams after its concurrent snapshot phase.
    pub fn entries_since(&self, cut: u64) -> Vec<StoreEntry> {
        let mut out: Vec<_> = self
            .map
            .iter()
            .filter(|(_, e)| e.seq > cut)
            .map(|(k, e)| (k.clone(), e.seq, e.val.clone()))
            .collect();
        out.sort();
        out
    }

    /// FNV-1a digest over the sorted entries (tombstones included)
    /// and the last sequence — a replay-stable fingerprint of the
    /// shard's state.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for (k, seq, val) in self.entries() {
            eat(&(k.len() as u32).to_le_bytes());
            eat(&k);
            eat(&seq.to_le_bytes());
            match val {
                Some(v) => {
                    eat(&[1]);
                    eat(&(v.len() as u32).to_le_bytes());
                    eat(&v);
                }
                None => eat(&[0]),
            }
        }
        eat(&self.last_seq.to_le_bytes());
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_tombstones_and_digest() {
        let mut s = ShardStore::new();
        let a = s.apply_next(&Op::Put {
            key: b"k".to_vec(),
            val: b"v1".to_vec(),
        });
        assert_eq!(a.seq, 1);
        assert!(!a.existed);
        let b = s.apply_next(&Op::Put {
            key: b"k".to_vec(),
            val: b"v2".to_vec(),
        });
        assert_eq!(b.seq, 2);
        assert!(b.existed);
        assert_eq!(s.get(b"k"), (2, Some(b"v2".as_slice())));

        let d = s.apply_next(&Op::Del { key: b"k".to_vec() });
        assert_eq!(d.seq, 3);
        assert!(d.existed);
        assert_eq!(s.get(b"k"), (3, None));
        assert_eq!(s.get(b"missing"), (0, None));
        assert_eq!(s.len(), 0);
        assert_eq!(s.last_seq(), 3);

        // Replaying the same ops at the same sequences reproduces the
        // digest exactly.
        let mut r = ShardStore::new();
        r.apply_at(
            1,
            &Op::Put {
                key: b"k".to_vec(),
                val: b"v1".to_vec(),
            },
        );
        r.apply_at(
            2,
            &Op::Put {
                key: b"k".to_vec(),
                val: b"v2".to_vec(),
            },
        );
        r.apply_at(3, &Op::Del { key: b"k".to_vec() });
        assert_eq!(s.digest(), r.digest());
    }
}
