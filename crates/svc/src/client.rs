//! The client library: consistent-hash routing, per-shard persistent
//! bindings, and timeout-driven re-routing across failovers.
//!
//! A client holds at most one RPC binding per shard, established
//! lazily against the shard's *current* routing epoch and reused for
//! every subsequent call — the persistent-channel fast path. Failure
//! handling is entirely timeout-driven: a call that outlives
//! [`op_timeout`](crate::SvcConfig::op_timeout) poisons its binding
//! (the server may still answer the abandoned sequence later), so the
//! client drops it, backs off one
//! [`retry_backoff`](crate::SvcConfig::retry_backoff) — long enough
//! for a watchdog poll to promote — and re-binds against whatever
//! route the cluster then advertises.

use std::sync::Arc;

use shrimp_sim::Ctx;
use shrimp_srpc::{SrpcClient, Val};

use crate::cluster::SvcCluster;
use crate::store::{Applied, Op, MAX_KEY, MAX_VAL};
use crate::SvcError;

struct Conn {
    epoch: u32,
    rpc: SrpcClient,
}

/// A KV client bound to one node. Not `Send`-shared: each client
/// process owns its own.
pub struct SvcClient {
    cluster: Arc<SvcCluster>,
    node: usize,
    tag: String,
    conns: Vec<Option<Conn>>,
    endpoints: u64,
}

impl std::fmt::Debug for SvcClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SvcClient")
            .field("node", &self.node)
            .field("tag", &self.tag)
            .finish_non_exhaustive()
    }
}

fn pad(bytes: &[u8], n: usize) -> Val {
    let mut v = bytes.to_vec();
    v.resize(n, 0);
    Val::Bytes(v)
}

fn as_u32(v: &Val) -> u32 {
    match v {
        Val::U32(x) => *x,
        _ => 0,
    }
}

fn as_bool(v: &Val) -> bool {
    matches!(v, Val::Bool(true))
}

impl SvcClient {
    /// A client living on node `node`; `tag` disambiguates endpoint
    /// names when a node hosts several clients.
    pub fn new(cluster: &Arc<SvcCluster>, node: usize, tag: impl Into<String>) -> SvcClient {
        SvcClient {
            cluster: Arc::clone(cluster),
            node,
            tag: tag.into(),
            conns: (0..cluster.config().shards).map(|_| None).collect(),
            endpoints: 0,
        }
    }

    /// The shard a key routes to.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.cluster.ring().shard_of(key)
    }

    /// Insert or overwrite `key`. On a replicated shard the returned
    /// ack means the write reached the backup.
    pub fn put(&mut self, ctx: &Ctx, key: &[u8], val: &[u8]) -> Result<Applied, SvcError> {
        check_len(key, MAX_KEY)?;
        check_len(val, MAX_VAL)?;
        let shard = self.shard_of(key);
        let outs = self.call(
            ctx,
            shard,
            "put",
            &[
                pad(key, MAX_KEY),
                Val::U32(key.len() as u32),
                pad(val, MAX_VAL),
                Val::U32(val.len() as u32),
            ],
        )?;
        Ok(Applied {
            seq: as_u32(&outs[0]) as u64,
            existed: as_bool(&outs[1]),
        })
    }

    /// Read `key`: `(entry sequence, value)` — `(0, None)` when never
    /// written, a tombstone's sequence with `None` when deleted.
    pub fn get(&mut self, ctx: &Ctx, key: &[u8]) -> Result<(u64, Option<Vec<u8>>), SvcError> {
        check_len(key, MAX_KEY)?;
        let shard = self.shard_of(key);
        let outs = self.call(
            ctx,
            shard,
            "get",
            &[pad(key, MAX_KEY), Val::U32(key.len() as u32)],
        )?;
        let seq = as_u32(&outs[0]) as u64;
        let found = as_bool(&outs[1]);
        let val = if found {
            let vlen = as_u32(&outs[3]) as usize;
            match &outs[2] {
                Val::Bytes(b) => Some(b[..vlen.min(b.len())].to_vec()),
                _ => Some(Vec::new()),
            }
        } else {
            None
        };
        Ok((seq, val))
    }

    /// Delete `key`, leaving a sequenced tombstone.
    pub fn del(&mut self, ctx: &Ctx, key: &[u8]) -> Result<Applied, SvcError> {
        check_len(key, MAX_KEY)?;
        let shard = self.shard_of(key);
        let outs = self.call(
            ctx,
            shard,
            "del",
            &[pad(key, MAX_KEY), Val::U32(key.len() as u32)],
        )?;
        Ok(Applied {
            seq: as_u32(&outs[0]) as u64,
            existed: as_bool(&outs[1]),
        })
    }

    /// Apply a pre-built mutation (the load engine's path).
    pub fn apply(&mut self, ctx: &Ctx, op: &Op) -> Result<Applied, SvcError> {
        match op {
            Op::Put { key, val } => self.put(ctx, key, val),
            Op::Del { key } => self.del(ctx, key),
        }
    }

    /// One routed call with bounded waits, re-bind on epoch change,
    /// and bounded retries.
    fn call(
        &mut self,
        ctx: &Ctx,
        shard: usize,
        proc_name: &str,
        args: &[Val],
    ) -> Result<Vec<Val>, SvcError> {
        let cfg = self.cluster.config().clone();
        for _ in 0..cfg.max_attempts {
            let route = self.cluster.route(shard);
            let stale = match &self.conns[shard] {
                Some(c) => c.epoch != route.epoch,
                None => true,
            };
            if stale {
                self.conns[shard] = None;
                let name = format!("svc-cli-n{}-{}-{}", self.node, self.tag, self.endpoints);
                self.endpoints += 1;
                let vmmc = self.cluster.system().endpoint(self.node, name);
                let bound = SrpcClient::bind_deadline(
                    vmmc,
                    ctx,
                    self.cluster.directory(),
                    &SvcCluster::service(shard, route.epoch),
                    self.cluster.iface(),
                    ctx.now() + cfg.bind_timeout,
                );
                match bound {
                    Ok(rpc) => {
                        self.conns[shard] = Some(Conn {
                            epoch: route.epoch,
                            rpc,
                        });
                    }
                    Err(e) => {
                        let e = SvcError::from(e);
                        if !e.is_retryable() {
                            return Err(e);
                        }
                        ctx.advance(cfg.retry_backoff);
                        continue;
                    }
                }
            }
            let conn = self.conns[shard].as_mut().expect("bound above");
            match conn
                .rpc
                .call_deadline(ctx, proc_name, args, ctx.now() + cfg.op_timeout)
            {
                Ok(outs) => return Ok(outs),
                Err(e) => {
                    let e = SvcError::from(e);
                    if !e.is_retryable() {
                        return Err(e);
                    }
                    // Timed-out bindings are poisoned; drop, back off
                    // past a watchdog poll, and re-route.
                    self.conns[shard] = None;
                    ctx.advance(cfg.retry_backoff);
                }
            }
        }
        Err(SvcError::Exhausted {
            shard,
            attempts: cfg.max_attempts,
        })
    }
}

fn check_len(bytes: &[u8], limit: usize) -> Result<(), SvcError> {
    if bytes.len() > limit {
        return Err(SvcError::TooLarge {
            len: bytes.len(),
            limit,
        });
    }
    Ok(())
}
