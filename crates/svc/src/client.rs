//! The client library: consistent-hash routing, per-shard persistent
//! bindings, deadline-budgeted retries, and hedged reads.
//!
//! A client holds at most one RPC binding per shard, established
//! lazily against the shard's *current* routing epoch and reused for
//! every subsequent call — the persistent-channel fast path. Failure
//! handling is entirely timeout-driven, bounded two ways:
//!
//! * **Attempts** — at most
//!   [`max_attempts`](crate::SvcConfig::max_attempts) tries per
//!   operation ([`SvcError::Exhausted`] past that).
//! * **Time** — a per-request deadline budget of
//!   [`op_budget`](crate::SvcConfig::op_budget): every bind and reply
//!   wait is clamped to the budget's remainder and the operation fails
//!   with [`SvcError::DeadlineExceeded`] once it expires, so one
//!   request can never stall a caller across an entire failover storm.
//!
//! A failed attempt poisons its binding (the server may still answer
//! the abandoned sequence later), so the client drops it, sleeps a
//! *jittered* exponential backoff — doubling from
//! [`retry_base`](crate::SvcConfig::retry_base) up to
//! [`retry_cap`](crate::SvcConfig::retry_cap), scaled by a
//! deterministic per-client factor in `[0.75, 1.25)` so synchronized
//! clients fan out instead of thundering back in lockstep — and
//! re-binds against whatever route the cluster then advertises.
//!
//! With [`hedge_reads`](crate::SvcConfig::hedge_reads) on, a read that
//! outlives [`hedge_after`](crate::SvcConfig::hedge_after) *hedges*:
//! it is re-issued against the backup replica's read-only service
//! instead of waiting out the primary. Replica reads are safe because
//! the commit point of every acked write is the backup's ack — the
//! replica is never behind any acknowledged write, and a demoted
//! replica is fenced server-side before the demotion is acked.

use std::sync::Arc;

use shrimp_core::{ImportHandle, Vmmc};
use shrimp_mesh::NodeId;
use shrimp_node::{CacheMode, VAddr};
use shrimp_sim::{Ctx, SimDur, SimTime, SplitMix64};
use shrimp_srpc::{SrpcClient, Val};

use crate::cluster::SvcCluster;
use crate::read_through::{decode_slot, slot_of, SlotAnswer, SLOT_BYTES};
use crate::store::{Applied, Op, MAX_KEY, MAX_VAL};
use crate::{fnv1a, SvcError};

struct Conn {
    epoch: u32,
    rpc: SrpcClient,
}

/// A cached import of one generation's read-through slot table.
struct RtConn {
    epoch: u32,
    region: ImportHandle,
}

/// Client-side resilience counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Reads hedged to the backup replica after the primary stalled.
    pub hedges: u64,
    /// Hedged reads the backup answered (the request succeeded without
    /// waiting out the primary's recovery).
    pub hedge_wins: u64,
    /// Reads answered by a one-sided fetch of the primary's slot table
    /// (no RPC round trip).
    pub fetch_hits: u64,
    /// Read-through attempts whose fetched slot did not answer (empty
    /// slot, hash collision, or a deposed epoch) — the read fell back
    /// to the RPC path.
    pub fetch_misses: u64,
    /// Read-through attempts refused by the transport (fetch NAK,
    /// daemon outage, stale import) — the read fell back to the RPC
    /// path and the cached import was dropped.
    pub fetch_errors: u64,
}

/// A KV client bound to one node. Not `Send`-shared: each client
/// process owns its own.
pub struct SvcClient {
    cluster: Arc<SvcCluster>,
    node: usize,
    tag: String,
    conns: Vec<Option<Conn>>,
    hedge_conns: Vec<Option<Conn>>,
    rt_conns: Vec<Option<RtConn>>,
    /// Lazily created fetch endpoint and its slot-sized landing buffer
    /// (read-through only).
    rt: Option<(Vmmc, VAddr)>,
    endpoints: u64,
    rng: SplitMix64,
    stats: ClientStats,
}

impl std::fmt::Debug for SvcClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SvcClient")
            .field("node", &self.node)
            .field("tag", &self.tag)
            .finish_non_exhaustive()
    }
}

fn pad(bytes: &[u8], n: usize) -> Val {
    let mut v = bytes.to_vec();
    v.resize(n, 0);
    Val::Bytes(v)
}

fn as_u32(v: &Val) -> u32 {
    match v {
        Val::U32(x) => *x,
        _ => 0,
    }
}

fn as_bool(v: &Val) -> bool {
    matches!(v, Val::Bool(true))
}

fn earlier(a: SimTime, b: SimTime) -> SimTime {
    if a <= b {
        a
    } else {
        b
    }
}

impl SvcClient {
    /// A client living on node `node`; `tag` disambiguates endpoint
    /// names when a node hosts several clients.
    pub fn new(cluster: &Arc<SvcCluster>, node: usize, tag: impl Into<String>) -> SvcClient {
        let tag = tag.into();
        let shards = cluster.config().shards;
        SvcClient {
            cluster: Arc::clone(cluster),
            node,
            rng: SplitMix64::new(fnv1a(tag.as_bytes()) ^ node as u64),
            tag,
            conns: (0..shards).map(|_| None).collect(),
            hedge_conns: (0..shards).map(|_| None).collect(),
            rt_conns: (0..shards).map(|_| None).collect(),
            rt: None,
            endpoints: 0,
            stats: ClientStats::default(),
        }
    }

    /// The shard a key routes to.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.cluster.ring().shard_of(key)
    }

    /// Resilience counters accumulated so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Insert or overwrite `key`. On a replicated shard the returned
    /// ack means the write reached the backup.
    pub fn put(&mut self, ctx: &Ctx, key: &[u8], val: &[u8]) -> Result<Applied, SvcError> {
        check_len(key, MAX_KEY)?;
        check_len(val, MAX_VAL)?;
        let shard = self.shard_of(key);
        let outs = self.call(
            ctx,
            shard,
            "put",
            &[
                pad(key, MAX_KEY),
                Val::U32(key.len() as u32),
                pad(val, MAX_VAL),
                Val::U32(val.len() as u32),
            ],
        )?;
        Ok(Applied {
            seq: as_u32(&outs[0]) as u64,
            existed: as_bool(&outs[1]),
        })
    }

    /// Read `key`: `(entry sequence, value)` — `(0, None)` when never
    /// written, a tombstone's sequence with `None` when deleted.
    ///
    /// With [`read_through`](crate::SvcConfig::read_through) on, the
    /// read first tries a one-sided fetch of the primary's slot table
    /// — half the RPC's round trip, and the primary's CPU never runs —
    /// falling back to the RPC path on any miss or transport refusal.
    pub fn get(&mut self, ctx: &Ctx, key: &[u8]) -> Result<(u64, Option<Vec<u8>>), SvcError> {
        check_len(key, MAX_KEY)?;
        let shard = self.shard_of(key);
        if self.cluster.config().read_through {
            if let Some(hit) = self.try_read_through(ctx, shard, key) {
                return Ok(hit);
            }
        }
        let outs = self.call(
            ctx,
            shard,
            "get",
            &[pad(key, MAX_KEY), Val::U32(key.len() as u32)],
        )?;
        let seq = as_u32(&outs[0]) as u64;
        let found = as_bool(&outs[1]);
        let val = if found {
            let vlen = as_u32(&outs[3]) as usize;
            match &outs[2] {
                Val::Bytes(b) => Some(b[..vlen.min(b.len())].to_vec()),
                _ => Some(Vec::new()),
            }
        } else {
            None
        };
        Ok((seq, val))
    }

    /// Delete `key`, leaving a sequenced tombstone.
    pub fn del(&mut self, ctx: &Ctx, key: &[u8]) -> Result<Applied, SvcError> {
        check_len(key, MAX_KEY)?;
        let shard = self.shard_of(key);
        let outs = self.call(
            ctx,
            shard,
            "del",
            &[pad(key, MAX_KEY), Val::U32(key.len() as u32)],
        )?;
        Ok(Applied {
            seq: as_u32(&outs[0]) as u64,
            existed: as_bool(&outs[1]),
        })
    }

    /// Apply a pre-built mutation (the load engine's path).
    pub fn apply(&mut self, ctx: &Ctx, op: &Op) -> Result<Applied, SvcError> {
        match op {
            Op::Put { key, val } => self.put(ctx, key, val),
            Op::Del { key } => self.del(ctx, key),
        }
    }

    /// A fresh endpoint name (abandoned bindings are never reused).
    fn next_endpoint(&mut self) -> String {
        let name = format!("svc-cli-n{}-{}-{}", self.node, self.tag, self.endpoints);
        self.endpoints += 1;
        name
    }

    /// Sleep the jittered exponential backoff for a finished attempt
    /// (0-based), clamped so the sleep never overshoots the deadline
    /// by more than one step.
    fn backoff(&mut self, ctx: &Ctx, attempt: u32) {
        let cfg = self.cluster.config();
        let exp = cfg
            .retry_base
            .as_ps()
            .saturating_mul(1u64 << attempt.min(20));
        let capped = exp.min(cfg.retry_cap.as_ps());
        // Deterministic jitter in [0.75, 1.25): 768..1281 / 1024.
        let scale = 768 + self.rng.next_below(513);
        ctx.advance(SimDur::from_ps(capped / 1024 * scale));
    }

    /// One routed call under the deadline budget: bounded waits,
    /// re-bind on epoch change, jittered retries, and (for reads)
    /// hedging to the backup replica.
    fn call(
        &mut self,
        ctx: &Ctx,
        shard: usize,
        proc_name: &str,
        args: &[Val],
    ) -> Result<Vec<Val>, SvcError> {
        let cfg = self.cluster.config().clone();
        let deadline = ctx.now() + cfg.op_budget;
        let hedgeable = cfg.hedge_reads && proc_name == "get";
        let mut attempts = 0u32;
        while attempts < cfg.max_attempts {
            if ctx.now() >= deadline {
                return Err(SvcError::DeadlineExceeded { shard, attempts });
            }
            attempts += 1;
            let route = self.cluster.route(shard);
            let stale = match &self.conns[shard] {
                Some(c) => c.epoch != route.epoch,
                None => true,
            };
            if stale {
                self.conns[shard] = None;
                let name = self.next_endpoint();
                let vmmc = self.cluster.system().endpoint(self.node, name);
                let bound = SrpcClient::bind_deadline(
                    vmmc,
                    ctx,
                    self.cluster.directory(),
                    &SvcCluster::service(shard, route.epoch),
                    self.cluster.iface(),
                    earlier(ctx.now() + cfg.bind_timeout, deadline),
                );
                match bound {
                    Ok(rpc) => {
                        self.conns[shard] = Some(Conn {
                            epoch: route.epoch,
                            rpc,
                        });
                    }
                    Err(e) => {
                        let e = SvcError::from(e);
                        if !e.is_retryable() {
                            return Err(e);
                        }
                        self.backoff(ctx, attempts - 1);
                        continue;
                    }
                }
            }
            // A hedging-enabled read gives the primary only
            // `hedge_after` before trying the replica.
            let wait = if hedgeable {
                cfg.hedge_after
            } else {
                cfg.op_timeout
            };
            let Some(conn) = self.conns[shard].as_mut() else {
                continue;
            };
            match conn
                .rpc
                .call_deadline(ctx, proc_name, args, earlier(ctx.now() + wait, deadline))
            {
                Ok(outs) => return Ok(outs),
                Err(e) => {
                    let e = SvcError::from(e);
                    if !e.is_retryable() {
                        return Err(e);
                    }
                    // Timed-out bindings are poisoned; drop, back off
                    // past a watchdog poll, and re-route.
                    self.conns[shard] = None;
                    if hedgeable && e.is_timeout() {
                        if let Some(outs) = self.try_hedge(ctx, shard, args, deadline) {
                            return Ok(outs);
                        }
                    }
                    self.backoff(ctx, attempts - 1);
                }
            }
        }
        Err(SvcError::Exhausted {
            shard,
            attempts: cfg.max_attempts,
        })
    }

    /// One hedged read against the backup replica's read-only service.
    /// Best-effort: any failure just falls back to the primary retry
    /// loop.
    fn try_hedge(
        &mut self,
        ctx: &Ctx,
        shard: usize,
        args: &[Val],
        deadline: SimTime,
    ) -> Option<Vec<Val>> {
        let cfg = self.cluster.config().clone();
        let route = self.cluster.route(shard);
        route.backup?;
        if ctx.now() >= deadline {
            return None;
        }
        self.stats.hedges += 1;
        let stale = match &self.hedge_conns[shard] {
            Some(c) => c.epoch != route.epoch,
            None => true,
        };
        if stale {
            self.hedge_conns[shard] = None;
            let name = self.next_endpoint();
            let vmmc = self.cluster.system().endpoint(self.node, name);
            let rpc = SrpcClient::bind_deadline(
                vmmc,
                ctx,
                self.cluster.directory(),
                &SvcCluster::hedge_service(shard, route.epoch),
                self.cluster.iface(),
                earlier(ctx.now() + cfg.bind_timeout, deadline),
            )
            .ok()?;
            self.hedge_conns[shard] = Some(Conn {
                epoch: route.epoch,
                rpc,
            });
        }
        let conn = self.hedge_conns[shard].as_mut()?;
        match conn.rpc.call_deadline(
            ctx,
            "get",
            args,
            earlier(ctx.now() + cfg.op_timeout, deadline),
        ) {
            Ok(outs) => {
                self.stats.hedge_wins += 1;
                Some(outs)
            }
            Err(_) => {
                self.hedge_conns[shard] = None;
                None
            }
        }
    }

    /// One zero-copy read attempt: fetch the key's slot from the
    /// primary's exported table and answer iff the slot publishes this
    /// key under the current routing epoch. `None` means "use the RPC
    /// path" — an empty or colliding slot, a deposed epoch, a table
    /// not yet exported, or a transport refusal.
    fn try_read_through(
        &mut self,
        ctx: &Ctx,
        shard: usize,
        key: &[u8],
    ) -> Option<(u64, Option<Vec<u8>>)> {
        let route = self.cluster.route(shard);
        let stale = match &self.rt_conns[shard] {
            Some(c) => c.epoch != route.epoch,
            None => true,
        };
        if stale {
            self.rt_conns[shard] = None;
            // The generation's exporter may not have published yet —
            // plain miss, the RPC path is always available.
            let (node, name) = self.cluster.rt_pub(shard, route.epoch)?;
            if self.rt.is_none() {
                let ep = format!("svc-rt-n{}-{}", self.node, self.tag);
                let vmmc = self.cluster.system().endpoint(self.node, ep);
                let dst = vmmc.proc_().alloc(SLOT_BYTES, CacheMode::WriteBack);
                self.rt = Some((vmmc, dst));
            }
            let (vmmc, _) = self.rt.as_ref().expect("just created");
            match vmmc.import(ctx, NodeId(node), name) {
                Ok(region) => {
                    self.rt_conns[shard] = Some(RtConn {
                        epoch: route.epoch,
                        region,
                    });
                }
                Err(_) => {
                    self.stats.fetch_errors += 1;
                    return None;
                }
            }
        }
        let fetched = {
            let conn = self.rt_conns[shard].as_ref()?;
            let (vmmc, dst) = self.rt.as_ref()?;
            let off = slot_of(key) * SLOT_BYTES;
            vmmc.fetch(ctx, *dst, &conn.region, off, SLOT_BYTES)
                .map(|()| vmmc.proc_().peek(*dst, SLOT_BYTES).expect("dst is mapped"))
        };
        match fetched {
            Ok(raw) => match decode_slot(&raw, route.epoch, key) {
                SlotAnswer::Hit(seq, val) => {
                    self.stats.fetch_hits += 1;
                    Some((seq, val))
                }
                SlotAnswer::Miss => {
                    self.stats.fetch_misses += 1;
                    None
                }
            },
            Err(_) => {
                // NAK, daemon outage, or a stale import (the exporting
                // daemon died): drop the binding and use the RPC path,
                // whose retry loop owns recovery.
                self.stats.fetch_errors += 1;
                self.rt_conns[shard] = None;
                None
            }
        }
    }
}

fn check_len(bytes: &[u8], limit: usize) -> Result<(), SvcError> {
    if bytes.len() > limit {
        return Err(SvcError::TooLarge {
            len: bytes.len(),
            limit,
        });
    }
    Ok(())
}
