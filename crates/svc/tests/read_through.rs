//! Zero-copy read-through end to end: with `read_through` on, gets of
//! cache-resident keys are answered by one-sided fetches of the
//! primary's slot table, every answer matches the RPC path's, and an
//! epoch bump (a planned migration) invalidates the stale table —
//! clients re-import the new generation's and keep reading correctly.

use std::sync::Arc;

use shrimp_core::{ShrimpSystem, SystemConfig};
use shrimp_sim::Kernel;
use shrimp_svc::{ClusterEvent, SvcClient, SvcCluster, SvcConfig};

#[test]
fn read_through_gets_hit_and_survive_epoch_bump() {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let nodes = system.len();
    let mut cfg = SvcConfig::chained(nodes);
    cfg.read_through = true;
    let watch = cfg.watch_interval;
    let cluster = SvcCluster::spawn(&system, cfg);
    cluster.register_clients(1);

    let cl = Arc::clone(&cluster);
    kernel.spawn("client", move |ctx| {
        let mut cli = SvcClient::new(&cl, 0, "rt");
        let keys: Vec<Vec<u8>> = (0..24)
            .map(|i| format!("rt-key-{i:02}").into_bytes())
            .collect();
        for (i, key) in keys.iter().enumerate() {
            let val = format!("value-{i:02}-payload").into_bytes();
            cli.put(ctx, key, &val).unwrap();
        }
        // First pass may fall back while tables come up; the answers
        // must be right either way.
        for pass in 0..2 {
            for (i, key) in keys.iter().enumerate() {
                let (seq, val) = cli.get(ctx, key).unwrap();
                assert!(seq > 0, "pass {pass}: key {i} must carry its write's seq");
                assert_eq!(
                    val.as_deref(),
                    Some(format!("value-{i:02}-payload").as_bytes()),
                    "pass {pass}: key {i} read back wrong"
                );
            }
        }
        let warm = cli.stats();
        assert!(
            warm.fetch_hits > 0,
            "warm gets must be served by one-sided fetches: {warm:?}"
        );

        // A deleted key answers through the slot's tombstone.
        cli.del(ctx, &keys[3]).unwrap();
        let (seq, val) = cli.get(ctx, &keys[3]).unwrap();
        assert!(seq > 0 && val.is_none(), "tombstone read: ({seq}, {val:?})");

        // Epoch bump: migrate one key's shard to another node. The old
        // table's epoch no longer matches, so the client re-imports the
        // new generation's table and keeps reading correctly.
        let probe = keys[7].clone();
        let shard = cli.shard_of(&probe);
        let before = cl.route(shard);
        let target = (before.primary + 1) % nodes;
        cl.request_migration(shard, target);
        let mut waited = 0;
        while cl.route(shard).epoch == before.epoch {
            ctx.advance(watch);
            waited += 1;
            assert!(waited < 500, "migration never activated");
        }
        let (seq, val) = cli.get(ctx, &probe).unwrap();
        assert!(seq > 0, "post-migration read lost the entry");
        assert_eq!(val.as_deref(), Some(b"value-07-payload".as_ref()));
        // Warm the new generation's table, then require a fetched hit.
        let h0 = cli.stats().fetch_hits;
        for _ in 0..3 {
            let (_, v) = cli.get(ctx, &probe).unwrap();
            assert_eq!(v.as_deref(), Some(b"value-07-payload".as_ref()));
        }
        assert!(
            cli.stats().fetch_hits > h0,
            "the migrated shard's new table must serve fetches: {:?}",
            cli.stats()
        );
        cl.client_done();
    });
    kernel.run_until_quiescent().unwrap();
    assert!(system.violations().is_empty(), "{:?}", system.violations());
    assert!(
        cluster
            .events()
            .iter()
            .any(|e| matches!(e, ClusterEvent::Migrated { .. })),
        "the migration must have been recorded: {}",
        cluster.event_log()
    );
}
