//! End-to-end properties of the sharded replicated KV service:
//!
//! * the cluster, driven by many concurrent clients, ends in exactly
//!   the state a sequential reference reaches when replaying the acked
//!   mutations in sequence order — and the backup replicas match the
//!   primaries bit-for-bit;
//! * killing a shard primary mid-run loses no acknowledged write, and
//!   the whole failover (promotion sequence, final state) replays
//!   bit-identically from the same fault plan.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use shrimp_core::{ShrimpSystem, SystemConfig};
use shrimp_sim::{FaultEvent, FaultKind, FaultPlan, Kernel, SimDur, SimTime, SplitMix64};
use shrimp_svc::{Op, ShardStore, SvcClient, SvcCluster, SvcConfig};

/// One client's acked mutations: `(shard, acked seq, op)`.
type AckLog = Vec<(usize, u64, Op)>;

fn scripted_ops(seed: u64, client: usize, n: usize, keys: u64) -> Vec<Op> {
    let mut rng = SplitMix64::new(seed ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..n)
        .map(|_| {
            let key = format!("key-{:04}", rng.next_below(keys)).into_bytes();
            if rng.next_below(100) < 25 {
                Op::Del { key }
            } else {
                let mut val = vec![0u8; 8 + rng.next_below(24) as usize];
                rng.fill_bytes(&mut val);
                Op::Put { key, val }
            }
        })
        .collect()
}

struct RunOutcome {
    acked: Vec<AckLog>,
    errors: u64,
    promotion_log: String,
    state_digest: u64,
    /// `(shard, primary digest, backup digest if replicated, backup
    /// survived at epoch 0)`.
    replicas: Vec<(usize, u64, Option<u64>, bool)>,
    cluster: Arc<SvcCluster>,
}

/// Drive `clients` concurrent scripted clients against a fresh
/// prototype cluster under `plan`, with `pace` virtual time between
/// each client's operations.
fn run_cluster(
    seed: u64,
    clients: usize,
    ops_per_client: usize,
    plan: &FaultPlan,
    pace: SimDur,
) -> RunOutcome {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    system.apply_faults(plan);
    let nodes = system.len();
    let mut cfg = SvcConfig::chained(nodes);
    cfg.conns_per_shard = clients.max(cfg.conns_per_shard);
    let cluster = SvcCluster::spawn(&system, cfg);
    cluster.register_clients(clients);

    let acked: Vec<Arc<Mutex<AckLog>>> = (0..clients).map(|_| Arc::default()).collect();
    let errors = Arc::new(Mutex::new(0u64));
    for (c, log) in acked.iter().enumerate() {
        let cluster = Arc::clone(&cluster);
        let ops = scripted_ops(seed, c, ops_per_client, 64);
        let log = Arc::clone(log);
        let errors = Arc::clone(&errors);
        kernel.spawn(format!("client{c}"), move |ctx| {
            let mut cli = SvcClient::new(&cluster, c % nodes, format!("t{c}"));
            for op in &ops {
                if pace > SimDur::ZERO {
                    ctx.advance(pace);
                }
                match cli.apply(ctx, op) {
                    Ok(a) => log.lock().push((cli.shard_of(op.key()), a.seq, op.clone())),
                    Err(e) => {
                        assert!(
                            e.class() == shrimp_svc::RetryClass::Transient,
                            "unexpected hard error: {e}"
                        );
                        *errors.lock() += 1;
                    }
                }
            }
            cluster.client_done();
        });
    }
    kernel.run_until_quiescent().unwrap();
    // Daemon crashes legitimately freeze the receive path (the chaos
    // harness asserts those violations occur); only a fault-free run
    // must stay clean.
    if plan.events.is_empty() {
        assert!(system.violations().is_empty(), "{:?}", system.violations());
    }

    let replicas = (0..cluster.config().shards)
        .map(|s| {
            let route = cluster.route(s);
            // After a promotion `authoritative_store` IS the backup
            // store (same mutex) — take the digests one at a time.
            let auth = cluster.authoritative_store(s).lock().digest();
            let bak = cluster.backup_store(s).map(|b| b.lock().digest());
            (s, auth, bak, route.backup.is_some() && route.epoch == 0)
        })
        .collect();
    let errors = *errors.lock();
    RunOutcome {
        acked: acked.iter().map(|a| a.lock().clone()).collect(),
        errors,
        promotion_log: cluster.promotion_log(),
        state_digest: cluster.state_digest(),
        replicas,
        cluster,
    }
}

/// Replay every acked mutation, per shard in sequence order, into
/// fresh reference stores and compare them to the cluster's
/// authoritative state.
fn assert_matches_reference(out: &RunOutcome, exact: bool) {
    let shards = out.cluster.config().shards;
    let mut by_shard: Vec<Vec<(u64, Op)>> = vec![Vec::new(); shards];
    for log in &out.acked {
        for (shard, seq, op) in log {
            by_shard[*shard].push((*seq, op.clone()));
        }
    }
    for (shard, mut muts) in by_shard.into_iter().enumerate() {
        muts.sort_by_key(|(seq, _)| *seq);
        let store = out.cluster.authoritative_store(shard);
        let store = store.lock();
        if exact {
            // Fault-free: every applied mutation was acked exactly
            // once, so the replay IS the store.
            let mut reference = ShardStore::new();
            for (seq, op) in &muts {
                assert_eq!(reference.last_seq() + 1, *seq, "acked seqs must be gapless");
                reference.apply_at(*seq, op);
            }
            assert_eq!(
                store.entries(),
                reference.entries(),
                "shard {shard} diverged from the sequential reference"
            );
            assert_eq!(store.digest(), reference.digest());
        } else {
            // Under faults retries may re-apply, so the store can hold
            // *newer* states; zero-lost-acks is the invariant: every
            // acked write is still reflected at `>=` its acked seq.
            for (seq, op) in &muts {
                let (eseq, val) = store.get(op.key());
                assert!(
                    eseq >= *seq,
                    "shard {shard}: acked seq {seq} for {:?} lost (entry seq {eseq})",
                    String::from_utf8_lossy(op.key())
                );
                if eseq == *seq {
                    match op {
                        Op::Put { val: v, .. } => assert_eq!(val, Some(v.as_slice())),
                        Op::Del { .. } => assert_eq!(val, None),
                    }
                }
            }
        }
    }
}

#[test]
fn two_clients_match_reference_and_replicas_agree() {
    let out = run_cluster(11, 2, 24, &FaultPlan::empty(), SimDur::ZERO);
    assert_eq!(out.errors, 0, "fault-free run must not error");
    assert!(out.promotion_log.is_empty());
    assert_matches_reference(&out, true);
    for (shard, primary, backup, intact) in &out.replicas {
        assert!(intact);
        assert_eq!(
            Some(*primary),
            *backup,
            "shard {shard}: backup diverged from primary"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The tentpole correctness property: any number of concurrent
    /// clients (2–16), any seed — the sharded replicated store matches
    /// the sequential reference, and every backup equals its primary
    /// at quiescence.
    #[test]
    fn sharded_store_matches_sequential_reference(
        seed in 0u64..1_000_000,
        clients in 2usize..17,
        ops in 5usize..21,
    ) {
        let out = run_cluster(seed, clients, ops, &FaultPlan::empty(), SimDur::ZERO);
        prop_assert_eq!(out.errors, 0, "fault-free run must not error");
        assert_matches_reference(&out, true);
        for (shard, primary, backup, intact) in &out.replicas {
            prop_assert!(*intact, "shard {} lost its backup without faults", shard);
            prop_assert_eq!(Some(*primary), *backup);
        }
    }
}

#[test]
fn primary_crash_loses_no_acked_write_and_replays_bit_identically() {
    // Node 1 dies mid-run: shard 1's primary (promoted to node 2) and
    // shard 0's backup (demoted) in one event.
    let plan = FaultPlan::scripted(vec![FaultEvent {
        at: SimTime::ZERO + SimDur::from_us(1_500.0),
        kind: FaultKind::DaemonCrash {
            node: 1,
            downtime: SimDur::from_us(3_000.0),
        },
    }]);
    let run = || run_cluster(23, 3, 80, &plan, SimDur::from_us(30.0));

    let a = run();
    assert!(
        a.promotion_log
            .contains("promote shard=1 epoch=1 node1->node2"),
        "expected shard 1 to fail over, log:\n{}",
        a.promotion_log
    );
    assert_matches_reference(&a, false);

    // Same plan, same seeds: bit-identical failover and final state.
    let b = run();
    assert_eq!(a.promotion_log, b.promotion_log);
    assert_eq!(a.state_digest, b.state_digest);
    assert_eq!(a.acked, b.acked);
    assert_eq!(a.errors, b.errors);
}

/// No two acked writes may carry the same `(shard, seq)`: a duplicate
/// means two server generations both applied at the same sequence —
/// exactly the stale-write window the epoch fencing exists to close.
fn assert_no_duplicate_acks(out: &RunOutcome) {
    let mut seen = std::collections::HashSet::new();
    for log in &out.acked {
        for (shard, seq, _) in log {
            assert!(
                seen.insert((*shard, *seq)),
                "duplicate acked sequence {seq} on shard {shard}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Double promotion: shard 1's primary (node 1) dies, the backup
    /// on node 2 is promoted, the watchdog re-arms a fresh backup —
    /// and then node 2 dies too. Clients holding channels from up to
    /// two epochs back must converge on the third generation with no
    /// acked write lost and no sequence double-assigned, for any
    /// crash timing in the window.
    #[test]
    fn double_promotion_converges_without_lost_or_duplicate_acks(
        t1_us in 800u64..1_400,
        gap_us in 900u64..1_500,
    ) {
        let plan = FaultPlan::scripted(vec![
            FaultEvent {
                at: SimTime::ZERO + SimDur::from_us(t1_us as f64),
                kind: FaultKind::DaemonCrash {
                    node: 1,
                    downtime: SimDur::from_us(10_000.0),
                },
            },
            FaultEvent {
                at: SimTime::ZERO + SimDur::from_us((t1_us + gap_us) as f64),
                kind: FaultKind::DaemonCrash {
                    node: 2,
                    downtime: SimDur::from_us(10_000.0),
                },
            },
        ]);
        let out = run_cluster(31, 3, 120, &plan, SimDur::from_us(30.0));
        let shard1_promos = out
            .cluster
            .promotions()
            .iter()
            .filter(|p| p.shard == 1)
            .count();
        prop_assert!(
            shard1_promos >= 2,
            "expected two promotions on shard 1 (gap {gap_us} us), log:\n{}",
            out.cluster.event_log()
        );
        prop_assert!(out.cluster.route(1).epoch >= 2);
        assert_matches_reference(&out, false);
        assert_no_duplicate_acks(&out);
    }
}

#[test]
fn scripted_migration_is_zero_lost_and_replays_bit_identically() {
    // A fault-plan directive moves shard 0's primary from node 0 to
    // node 2 mid-run: snapshot, freeze, delta, cut, epoch bump — then
    // the watchdog re-arms a backup for the new primary.
    let plan = FaultPlan::scripted(vec![FaultEvent {
        at: SimTime::ZERO + SimDur::from_us(1_200.0),
        kind: FaultKind::Directive {
            op: "migrate",
            a: 0,
            b: 2,
        },
    }]);
    let run = || run_cluster(29, 3, 80, &plan, SimDur::from_us(30.0));

    let a = run();
    let log = a.cluster.event_log();
    assert!(
        log.contains("migrate shard=0") && log.contains("node0->node2"),
        "expected shard 0 to migrate, log:\n{log}"
    );
    assert!(
        log.contains("rearm shard=0"),
        "the watchdog must re-arm a backup for the migrated shard, log:\n{log}"
    );
    assert_eq!(a.cluster.route(0).primary, 2, "handoff must stick");
    assert_matches_reference(&a, false);
    assert_no_duplicate_acks(&a);

    // Planned handoffs replay bit-identically like everything else.
    let b = run();
    assert_eq!(a.cluster.event_log(), b.cluster.event_log());
    assert_eq!(a.state_digest, b.state_digest);
    assert_eq!(a.acked, b.acked);
}
