//! Criterion benches: run a representative cell of each paper figure and
//! track the *simulator's* wall-clock cost (the simulated results
//! themselves are deterministic; see the `fig*` binaries for those).

use criterion::{criterion_group, criterion_main, Criterion};
use shrimp_bench::nx_pingpong::{nx_pingpong, NxVariant};
use shrimp_bench::pingpong::{vmmc_pingpong, Strategy};
use shrimp_bench::rpc_compare::{compatible_roundtrip, specialized_roundtrip};
use shrimp_bench::socket_bench::{one_way_pump, socket_pingpong};
use shrimp_bench::vrpc_bench::{vrpc_roundtrip, VrpcVariant};
use shrimp_node::CostModel;
use shrimp_sim::SimDur;
use shrimp_sockets::SocketVariant;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("fig3_vmmc_du0_4b", |b| {
        b.iter(|| vmmc_pingpong(Strategy::Du0Copy, 4, false, CostModel::shrimp_prototype()))
    });
    g.bench_function("fig3_vmmc_au1_10k", |b| {
        b.iter(|| {
            vmmc_pingpong(
                Strategy::Au1Copy,
                10240,
                false,
                CostModel::shrimp_prototype(),
            )
        })
    });
    g.bench_function("fig4_nx_au1_1k", |b| {
        b.iter(|| nx_pingpong(NxVariant::Au1Copy, 1024, CostModel::shrimp_prototype()))
    });
    g.bench_function("fig4_nx_du0_10k", |b| {
        b.iter(|| nx_pingpong(NxVariant::Du0Copy, 10240, CostModel::shrimp_prototype()))
    });
    g.bench_function("fig5_vrpc_null", |b| {
        b.iter(|| vrpc_roundtrip(VrpcVariant::Au1Copy, 4, CostModel::shrimp_prototype()))
    });
    g.bench_function("fig7_socket_au2_1k", |b| {
        b.iter(|| socket_pingpong(SocketVariant::Au2Copy, 1024, CostModel::shrimp_prototype()))
    });
    g.bench_function("fig8_compatible_null", |b| {
        b.iter(|| compatible_roundtrip(4, CostModel::shrimp_prototype()))
    });
    g.bench_function("fig8_specialized_null", |b| {
        b.iter(|| specialized_roundtrip(4, CostModel::shrimp_prototype()))
    });
    g.bench_function("ttcp_oneway_7k", |b| {
        b.iter(|| {
            one_way_pump(
                SocketVariant::Du1Copy,
                7168,
                10,
                SimDur::ZERO,
                CostModel::shrimp_prototype(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
