//! Figure 8: round-trip time for a null RPC with a single INOUT
//! argument of varying size — the SunRPC-compatible VRPC against the
//! non-compatible specialized SHRIMP RPC (fastest variant of each:
//! one-copy automatic update).

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{ShrimpSystem, SystemConfig};
use shrimp_node::CostModel;
use shrimp_sim::{Kernel, SimTime};
use shrimp_srpc::{parse_interface, SrpcClient, SrpcDirectory, SrpcServer, Val};

use crate::report::Point;
use crate::vrpc_bench::{vrpc_roundtrip, VrpcVariant};

const WARMUP: u32 = 2;
const ROUNDS: u32 = 8;

/// Round-trip time of the compatible system (VRPC, AU-1copy) for an
/// INOUT argument of `size` bytes.
pub fn compatible_roundtrip(size: usize, costs: CostModel) -> Point {
    vrpc_roundtrip(VrpcVariant::Au1Copy, size, costs)
}

/// Round-trip time of the specialized SHRIMP RPC for an INOUT argument
/// of `size` bytes. With `breakdown`, also returns the software-only
/// share of the round trip (paper §5: "software overhead ... under
/// 1 µsec"), measured by re-running with all transfer hardware made
/// instantaneous.
pub fn specialized_roundtrip(size: usize, costs: CostModel) -> Point {
    let size = size.max(4);
    let idl = format!("interface Null {{ ping(inout data: opaque[{size}]); }}");
    let kernel = Kernel::new();
    let mut config = SystemConfig::prototype();
    config.costs = costs;
    let system = ShrimpSystem::build(&kernel, config);
    let dir = SrpcDirectory::new();
    let iface = parse_interface(&idl).expect("well-formed idl");
    let result: Arc<Mutex<Option<(SimTime, SimTime)>>> = Arc::new(Mutex::new(None));

    {
        let vmmc = system.endpoint(1, "server");
        let dir = Arc::clone(&dir);
        let iface = iface.clone();
        kernel.spawn("server", move |ctx| {
            let mut server = SrpcServer::new(vmmc, &iface);
            server.register(
                "ping",
                Box::new(|ctx, ins, out| {
                    out.set(ctx, "data", &ins[0].clone()).unwrap();
                }),
            );
            let mut conn = server.accept(ctx, &dir, "null").unwrap();
            server.serve(ctx, &mut conn).unwrap();
        });
    }
    {
        let vmmc = system.endpoint(0, "client");
        let dir = Arc::clone(&dir);
        let result = Arc::clone(&result);
        kernel.spawn("client", move |ctx| {
            let mut client = SrpcClient::bind(vmmc, ctx, &dir, "null", &iface).unwrap();
            let arg = Val::Bytes(vec![0x55; size]);
            for _ in 0..WARMUP {
                client
                    .call(ctx, "ping", std::slice::from_ref(&arg))
                    .unwrap();
            }
            let t0 = ctx.now();
            for _ in 0..ROUNDS {
                client
                    .call(ctx, "ping", std::slice::from_ref(&arg))
                    .unwrap();
            }
            *result.lock() = Some((t0, ctx.now()));
            client.close(ctx).unwrap();
        });
    }
    kernel
        .run_until_quiescent()
        .expect("specialized RPC bench failed");
    assert!(system.violations().is_empty());
    let (t0, t1) = result.lock().expect("client never finished");
    let rtt_us = (t1 - t0).as_us() / ROUNDS as f64;
    Point {
        size,
        latency_us: rtt_us,
        bandwidth_mbs: (2 * size) as f64 / rtt_us,
    }
}

/// §5's software-overhead claim: re-run the null call with every
/// hardware and transfer cost zeroed except library software, and report
/// the per-round-trip software time.
pub fn specialized_software_overhead() -> f64 {
    let mut costs = CostModel::shrimp_prototype();
    // Software-only: library call/bookkeeping costs stay; everything the
    // hardware or memory system does is free.
    costs.store_first_wt = shrimp_sim::SimDur::ZERO;
    costs.store_word_wt = shrimp_sim::SimDur::ZERO;
    costs.store_word_wb = shrimp_sim::SimDur::ZERO;
    costs.store_first_uc = shrimp_sim::SimDur::ZERO;
    costs.store_word_uc = shrimp_sim::SimDur::ZERO;
    costs.load_word = shrimp_sim::SimDur::ZERO;
    costs.poll_gap = shrimp_sim::SimDur::from_ps(1); // keep polls live
    costs.copy_setup = shrimp_sim::SimDur::ZERO;
    costs.nic_snoop = shrimp_sim::SimDur::ZERO;
    costs.nic_packetize = shrimp_sim::SimDur::ZERO;
    costs.au_combine_timeout = shrimp_sim::SimDur::from_ps(1);
    costs.du_engine_setup = shrimp_sim::SimDur::ZERO;
    costs.dma_setup = shrimp_sim::SimDur::ZERO;
    costs.nic_ipt_check = shrimp_sim::SimDur::ZERO;
    costs.eisa_pio_access = shrimp_sim::SimDur::ZERO;
    costs.membus_per_txn = shrimp_sim::SimDur::ZERO;
    costs.eisa_per_txn = shrimp_sim::SimDur::ZERO;
    costs.membus_bytes_per_sec = 1e15;
    costs.eisa_bytes_per_sec = 1e15;
    costs.copy_bytes_per_sec_wb = 1e15;
    costs.copy_bytes_per_sec_wt = 1e15;
    costs.copy_bytes_per_sec_uc = 1e15;
    specialized_roundtrip(4, costs).latency_us
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specialized_is_several_times_faster_for_null_calls() {
        let c = compatible_roundtrip(4, CostModel::shrimp_prototype());
        let s = specialized_roundtrip(4, CostModel::shrimp_prototype());
        let ratio = c.latency_us / s.latency_us;
        assert!(
            ratio > 2.5,
            "compatible {:.1} us vs specialized {:.1} us (paper: >3x)",
            c.latency_us,
            s.latency_us
        );
    }

    #[test]
    fn gap_narrows_to_about_2x_for_1000_byte_arguments() {
        let c = compatible_roundtrip(1000, CostModel::shrimp_prototype());
        let s = specialized_roundtrip(1000, CostModel::shrimp_prototype());
        let ratio = c.latency_us / s.latency_us;
        assert!(
            (1.4..3.0).contains(&ratio),
            "1000 B ratio {ratio:.2} (paper: roughly a factor of two)"
        );
    }

    #[test]
    fn software_overhead_is_small() {
        let us = specialized_software_overhead();
        assert!(
            us < 3.0,
            "software-only round trip {us:.2} us (paper: <1 us per call)"
        );
    }
}
