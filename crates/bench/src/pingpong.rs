//! Figure 3: latency and bandwidth delivered by the raw VMMC layer.
//!
//! Two processes on two nodes ping-pong equally-sized messages using the
//! four transfer strategies of paper §3.4:
//!
//! * **AU-1copy** — sender copies user data into an automatic-update
//!   bound region (the copy *is* the send); receiver reads in place.
//! * **AU-2copy** — as above plus a receiver-side copy to user memory.
//! * **DU-0copy** — deliberate update straight from the sender's user
//!   buffer into the receiver's exported user buffer.
//! * **DU-1copy** — deliberate update into an exported staging buffer;
//!   receiver copies to user memory.
//!
//! The message's final word doubles as the arrival flag (per-direction
//! sequence number): in-order delivery guarantees the rest of the
//! message is present once it changes.

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{BufferName, ExportOpts, ImportHandle, ShrimpSystem, SystemConfig, Vmmc};
use shrimp_mesh::NodeId;
use shrimp_node::{CacheMode, CostModel, VAddr};
use shrimp_sim::{Ctx, Kernel, SimChannel, SimTime};

use crate::report::Point;

/// The four base-layer transfer strategies of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Automatic update, one copy (sender side only).
    Au1Copy,
    /// Automatic update, copies on both sides.
    Au2Copy,
    /// Deliberate update, zero copies.
    Du0Copy,
    /// Deliberate update, one copy (receiver side).
    Du1Copy,
}

impl Strategy {
    /// The paper's legend label.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Au1Copy => "AU-1copy",
            Strategy::Au2Copy => "AU-2copy",
            Strategy::Du0Copy => "DU-0copy",
            Strategy::Du1Copy => "DU-1copy",
        }
    }

    /// All four, in the paper's legend order.
    pub fn all() -> [Strategy; 4] {
        [
            Strategy::Au1Copy,
            Strategy::Au2Copy,
            Strategy::Du0Copy,
            Strategy::Du1Copy,
        ]
    }
}

/// Number of warm-up and measured round trips. The simulator is
/// deterministic, so a handful of rounds suffices to average out flag
/// polling phase.
const WARMUP: u32 = 2;
const ROUNDS: u32 = 8;
const POLL_BUDGET: usize = 10_000;

struct Side {
    vmmc: Vmmc,
    /// Exported receive buffer (peer writes messages here).
    recv: VAddr,
    /// Local user buffer (payload source / receiver copy target).
    user: VAddr,
    /// AU-bound send region (AU strategies only).
    au_send: Option<VAddr>,
    peer: ImportHandle,
    size: usize,
}

impl Side {
    fn send_message(&self, ctx: &Ctx, seq: u32, strategy: Strategy) {
        let n = self.size;
        let p = self.vmmc.proc_();
        match strategy {
            Strategy::Au1Copy | Strategy::Au2Copy => {
                // Update the flag word in the user buffer, then copy the
                // whole message into the AU region: the copy is the send,
                // and the flag (last word) is stored last.
                p.write_u32(ctx, self.user.add(n - 4), seq).unwrap();
                let au = self.au_send.expect("AU strategy without binding");
                p.copy(ctx, self.user, au, n).unwrap();
            }
            Strategy::Du0Copy | Strategy::Du1Copy => {
                p.write_u32(ctx, self.user.add(n - 4), seq).unwrap();
                self.vmmc.send(ctx, self.user, &self.peer, 0, n).unwrap();
            }
        }
    }

    fn recv_message(&self, ctx: &Ctx, seq: u32, strategy: Strategy) {
        let n = self.size;
        self.vmmc
            .wait_u32(ctx, self.recv.add(n - 4), POLL_BUDGET, |v| v == seq)
            .unwrap();
        match strategy {
            Strategy::Au2Copy | Strategy::Du1Copy => {
                // Consume into user memory.
                self.vmmc
                    .proc_()
                    .copy(ctx, self.recv, self.user, n)
                    .unwrap();
            }
            Strategy::Au1Copy | Strategy::Du0Copy => {}
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn setup_side(
    vmmc: Vmmc,
    ctx: &Ctx,
    size: usize,
    strategy: Strategy,
    uncached: bool,
    my_names: &SimChannel<BufferName>,
    peer_names: &SimChannel<BufferName>,
    peer_node: NodeId,
) -> Side {
    let n = size.max(4);
    let pages = n.div_ceil(shrimp_node::PAGE_SIZE).max(1) * shrimp_node::PAGE_SIZE;
    let recv = vmmc.proc_().alloc(pages, CacheMode::WriteBack);
    let user = vmmc.proc_().alloc(pages, CacheMode::WriteBack);
    let name = vmmc
        .export(ctx, recv, pages, ExportOpts::default())
        .unwrap();
    my_names.send(&ctx.handle(), name);
    let peer_name = peer_names.recv(ctx);
    let peer = vmmc.import(ctx, peer_node, peer_name).unwrap();
    let au_send = match strategy {
        Strategy::Au1Copy | Strategy::Au2Copy => {
            let au = vmmc.proc_().alloc(pages, CacheMode::WriteBack);
            let b = vmmc
                .bind_au(
                    ctx,
                    au,
                    &peer,
                    0,
                    pages / shrimp_node::PAGE_SIZE,
                    true,
                    false,
                )
                .unwrap();
            if uncached {
                // Caching disabled on the AU region (paper's 3.7 us case).
                for i in 0..b.pages() {
                    vmmc.proc_()
                        .aspace()
                        .set_cache_mode(
                            au.add(i * shrimp_node::PAGE_SIZE).page(),
                            CacheMode::Uncached,
                        )
                        .unwrap();
                }
            }
            Some(au)
        }
        _ => None,
    };
    Side {
        vmmc,
        recv,
        user,
        au_send,
        peer,
        size: n,
    }
}

/// Run one ping-pong experiment on a fresh prototype system; returns the
/// measured point.
pub fn vmmc_pingpong(strategy: Strategy, size: usize, uncached: bool, costs: CostModel) -> Point {
    let kernel = Kernel::new();
    let mut config = SystemConfig::prototype();
    config.costs = costs;
    let system = ShrimpSystem::build(&kernel, config);
    let a_names: SimChannel<BufferName> = SimChannel::new();
    let b_names: SimChannel<BufferName> = SimChannel::new();
    let result: Arc<Mutex<Option<(SimTime, SimTime)>>> = Arc::new(Mutex::new(None));

    {
        let vmmc = system.endpoint(0, "ping");
        let a_names = a_names.clone();
        let b_names = b_names.clone();
        let result = Arc::clone(&result);
        kernel.spawn("ping", move |ctx| {
            let side = setup_side(
                vmmc,
                ctx,
                size,
                strategy,
                uncached,
                &a_names,
                &b_names,
                NodeId(1),
            );
            // Fill the payload once (applications send live buffers; the
            // per-round flag update is the only refresh, like the
            // original microbenchmark).
            let fill: Vec<u8> = (0..side.size).map(|i| (i % 239) as u8).collect();
            side.vmmc.proc_().poke(side.user, &fill).unwrap();
            for r in 0..WARMUP {
                side.send_message(ctx, r * 2 + 1, strategy);
                side.recv_message(ctx, r * 2 + 2, strategy);
            }
            let t0 = ctx.now();
            for r in 0..ROUNDS {
                let base = (WARMUP + r) * 2;
                side.send_message(ctx, base + 1, strategy);
                side.recv_message(ctx, base + 2, strategy);
            }
            *result.lock() = Some((t0, ctx.now()));
        });
    }
    {
        let vmmc = system.endpoint(1, "pong");
        kernel.spawn("pong", move |ctx| {
            let side = setup_side(
                vmmc,
                ctx,
                size,
                strategy,
                uncached,
                &b_names,
                &a_names,
                NodeId(0),
            );
            let fill: Vec<u8> = (0..side.size).map(|i| (i % 239) as u8).collect();
            side.vmmc.proc_().poke(side.user, &fill).unwrap();
            for r in 0..(WARMUP + ROUNDS) {
                side.recv_message(ctx, r * 2 + 1, strategy);
                side.send_message(ctx, r * 2 + 2, strategy);
            }
        });
    }

    kernel
        .run_until_quiescent()
        .expect("ping-pong simulation failed");
    assert!(
        system.violations().is_empty(),
        "protection violations during ping-pong"
    );
    let (t0, t1) = result.lock().expect("ping process never finished");
    let total_us = (t1 - t0).as_us();
    let one_way_us = total_us / (2.0 * ROUNDS as f64);
    let n = size.max(4);
    Point {
        size: n,
        latency_us: one_way_us,
        bandwidth_mbs: n as f64 / one_way_us, // bytes/us == MB/s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn du0_one_word_latency_near_paper_anchor() {
        let p = vmmc_pingpong(Strategy::Du0Copy, 4, false, CostModel::shrimp_prototype());
        assert!(
            (p.latency_us - 7.6).abs() < 1.0,
            "DU one-word latency {} vs paper 7.6 us",
            p.latency_us
        );
    }

    #[test]
    fn au1_one_word_latency_near_paper_anchor() {
        let p = vmmc_pingpong(Strategy::Au1Copy, 4, false, CostModel::shrimp_prototype());
        assert!(
            (p.latency_us - 4.75).abs() < 0.75,
            "AU one-word latency {} vs paper 4.75 us",
            p.latency_us
        );
    }

    #[test]
    fn uncached_au_is_faster_than_writethrough() {
        let wt = vmmc_pingpong(Strategy::Au1Copy, 4, false, CostModel::shrimp_prototype());
        let uc = vmmc_pingpong(Strategy::Au1Copy, 4, true, CostModel::shrimp_prototype());
        assert!(
            uc.latency_us < wt.latency_us,
            "uncached {} !< wt {}",
            uc.latency_us,
            wt.latency_us
        );
    }

    #[test]
    fn du0_peak_bandwidth_near_23mbs() {
        let p = vmmc_pingpong(
            Strategy::Du0Copy,
            10240,
            false,
            CostModel::shrimp_prototype(),
        );
        assert!(
            (p.bandwidth_mbs - 23.0).abs() < 3.0,
            "DU-0copy bandwidth {} vs paper ~23 MB/s",
            p.bandwidth_mbs
        );
    }

    #[test]
    fn strategy_ordering_matches_paper() {
        // Small messages: AU beats DU (low start-up).
        let au = vmmc_pingpong(Strategy::Au1Copy, 16, false, CostModel::shrimp_prototype());
        let du = vmmc_pingpong(Strategy::Du0Copy, 16, false, CostModel::shrimp_prototype());
        assert!(au.latency_us < du.latency_us);
        // Large messages: DU-0copy delivers the highest bandwidth.
        let au_l = vmmc_pingpong(
            Strategy::Au1Copy,
            10240,
            false,
            CostModel::shrimp_prototype(),
        );
        let du_l = vmmc_pingpong(
            Strategy::Du0Copy,
            10240,
            false,
            CostModel::shrimp_prototype(),
        );
        let au2_l = vmmc_pingpong(
            Strategy::Au2Copy,
            10240,
            false,
            CostModel::shrimp_prototype(),
        );
        let du1_l = vmmc_pingpong(
            Strategy::Du1Copy,
            10240,
            false,
            CostModel::shrimp_prototype(),
        );
        assert!(du_l.bandwidth_mbs > au_l.bandwidth_mbs);
        assert!(au_l.bandwidth_mbs > au2_l.bandwidth_mbs);
        assert!(du1_l.bandwidth_mbs > au2_l.bandwidth_mbs);
    }
}
