//! Ablations of the design choices DESIGN.md §5 calls out: what the
//! paper's co-design decisions are worth, measured.

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{BufferName, ExportOpts, ShrimpSystem, SystemConfig};
use shrimp_mesh::NodeId;
use shrimp_node::{CacheMode, CostModel};
use shrimp_nx::{NxConfig, NxWorld};
use shrimp_sim::{Kernel, SimChannel, SimDur, SimTime};

use crate::nx_pingpong::NxVariant;
use crate::pingpong::{vmmc_pingpong, Strategy};

/// A1 — combine-timeout sweep: one-word AU latency as a function of the
/// packetizer's hold window (the timer of paper §3.2).
pub fn combine_timeout_sweep() -> Vec<(f64, f64)> {
    [0.25, 0.5, 1.0, 2.0, 4.0]
        .into_iter()
        .map(|us| {
            let mut costs = CostModel::shrimp_prototype();
            costs.au_combine_timeout = SimDur::from_us(us);
            let p = vmmc_pingpong(Strategy::Au1Copy, 4, false, costs);
            (us, p.latency_us)
        })
        .collect()
}

/// A2 — write combining on/off for a 64-byte message written as sixteen
/// single-word stores (the marshaling pattern combining was built for).
/// Returns `(combine, one_way_us, packets, rx_eisa_busy_us)` per case:
/// combining trades a little hold-timer latency for an order of
/// magnitude fewer packets and far less receive-bus occupancy.
pub fn combining_on_off() -> [(bool, f64, u64, f64); 2] {
    fn run(combine: bool) -> (f64, u64, f64) {
        let kernel = Kernel::new();
        let mut config = SystemConfig::prototype();
        // A hold window longer than one word-store's cost, so the
        // combining mechanism (not the timer) is what is measured.
        config.costs.au_combine_timeout = SimDur::from_us(3.0);
        let system = ShrimpSystem::build(&kernel, config);
        let names: SimChannel<BufferName> = SimChannel::new();
        let t: Arc<Mutex<(SimTime, SimTime)>> =
            Arc::new(Mutex::new((SimTime::ZERO, SimTime::ZERO)));
        {
            let rx = system.endpoint(1, "rx");
            let names = names.clone();
            let t = Arc::clone(&t);
            kernel.spawn("rx", move |ctx| {
                let buf = rx.proc_().alloc(4096, CacheMode::WriteBack);
                let name = rx.export(ctx, buf, 4096, ExportOpts::default()).unwrap();
                names.send(&ctx.handle(), name);
                rx.wait_u32(ctx, buf.add(60), 4096, |v| v == 0xF1A6)
                    .unwrap();
                t.lock().1 = ctx.now();
            });
        }
        {
            let tx = system.endpoint(0, "tx");
            let t = Arc::clone(&t);
            kernel.spawn("tx", move |ctx| {
                let name = names.recv(ctx);
                let dst = tx.import(ctx, NodeId(1), name).unwrap();
                let au = tx.proc_().alloc(4096, CacheMode::WriteBack);
                tx.bind_au(ctx, au, &dst, 0, 1, combine, false).unwrap();
                t.lock().0 = ctx.now();
                // Sixteen word stores, the last one the flag.
                for w in 0..15u32 {
                    tx.proc_()
                        .write_u32(ctx, au.add(w as usize * 4), w + 1)
                        .unwrap();
                }
                tx.proc_().write_u32(ctx, au.add(60), 0xF1A6).unwrap();
            });
        }
        kernel.run_until_quiescent().unwrap();
        let (t0, t1) = *t.lock();
        let (busy, _txns, _bytes) = system.node(1).eisa().stats();
        (
            (t1 - t0).as_us(),
            system.nic(0).stats().au_packets_out,
            busy.as_us(),
        )
    }
    let on = run(true);
    let off = run(false);
    [(true, on.0, on.1, on.2), (false, off.0, off.1, off.2)]
}

/// A3 — the word-alignment restriction: NX DU-1copy one-way latency for
/// an aligned vs deliberately misaligned user buffer (the unaligned one
/// falls back to the marshal-copy path; paper §6 regrets this hardware
/// restriction).
pub fn alignment_fallback() -> (f64, f64) {
    fn run(offset: usize) -> f64 {
        let kernel = Kernel::new();
        let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
        let mut config = NxConfig::paper_default();
        config.send_variant = shrimp_nx::SendVariant::DuFromUser;
        let world = NxWorld::new(Arc::clone(&system), config, vec![0, 1]);
        let out: Arc<Mutex<f64>> = Arc::new(Mutex::new(0.0));
        {
            let world = Arc::clone(&world);
            let out = Arc::clone(&out);
            kernel.spawn("tx", move |ctx| {
                let mut nx = world.join(ctx, 0);
                let buf = nx
                    .vmmc()
                    .proc_()
                    .alloc_at_offset(2048, offset, CacheMode::WriteBack);
                let rbuf = nx.vmmc().proc_().alloc(2048, CacheMode::WriteBack);
                for _ in 0..2 {
                    nx.csend(ctx, 1, buf, 1024, 1).unwrap();
                    nx.crecv(ctx, 2, rbuf, 2048).unwrap();
                }
                let t0 = ctx.now();
                const N: u32 = 8;
                for _ in 0..N {
                    nx.csend(ctx, 1, buf, 1024, 1).unwrap();
                    nx.crecv(ctx, 2, rbuf, 2048).unwrap();
                }
                *out.lock() = (ctx.now() - t0).as_us() / (2.0 * N as f64);
                nx.flush(ctx).unwrap();
            });
        }
        {
            let world = Arc::clone(&world);
            kernel.spawn("rx", move |ctx| {
                let mut nx = world.join(ctx, 1);
                let buf = nx.vmmc().proc_().alloc(2048, CacheMode::WriteBack);
                for _ in 0..10 {
                    nx.crecv(ctx, 1, buf, 2048).unwrap();
                    nx.csend(ctx, 2, buf, 1024, 0).unwrap();
                }
                nx.flush(ctx).unwrap();
            });
        }
        kernel.run_until_quiescent().unwrap();
        let v = *out.lock();
        v
    }
    (run(0), run(2))
}

/// A4 — the optimistic sender-side copy (paper footnote 1): how long a
/// blocking `csend` of a large message detains the application, with and
/// without the safe copy. Returns ((blocked_us, total_us), ...) for
/// (optimistic, non-optimistic).
pub fn optimistic_copy_on_off(len: usize) -> ((f64, f64), (f64, f64)) {
    fn run(optimistic: bool, len: usize) -> (f64, f64) {
        let kernel = Kernel::new();
        let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
        let mut config = NxConfig::paper_default();
        config.optimistic_copy = optimistic;
        let world = NxWorld::new(Arc::clone(&system), config, vec![0, 1]);
        let out: Arc<Mutex<(f64, SimTime)>> = Arc::new(Mutex::new((0.0, SimTime::ZERO)));
        let done: Arc<Mutex<SimTime>> = Arc::new(Mutex::new(SimTime::ZERO));
        {
            let world = Arc::clone(&world);
            let out = Arc::clone(&out);
            kernel.spawn("tx", move |ctx| {
                let mut nx = world.join(ctx, 0);
                let buf = nx.vmmc().proc_().alloc(len, CacheMode::WriteBack);
                let t0 = ctx.now();
                nx.csend(ctx, 1, buf, len, 1).unwrap();
                out.lock().0 = (ctx.now() - t0).as_us(); // application blocked
                nx.flush(ctx).unwrap();
            });
        }
        {
            let world = Arc::clone(&world);
            let done = Arc::clone(&done);
            kernel.spawn("rx", move |ctx| {
                let mut nx = world.join(ctx, 1);
                let buf = nx.vmmc().proc_().alloc(len, CacheMode::WriteBack);
                // The receiver is busy for a while before it posts the
                // receive — exactly when the optimistic copy pays off.
                ctx.advance(SimDur::from_us(2_000.0));
                nx.crecv(ctx, 1, buf, len).unwrap();
                *done.lock() = ctx.now();
            });
        }
        kernel.run_until_quiescent().unwrap();
        let blocked = out.lock().0;
        let total = done.lock().as_us();
        (blocked, total)
    }
    (run(true, len), run(false, len))
}

/// A5 — separating data from control transfer: one-way latency of a
/// small transfer when every message also forces a notification
/// interrupt on the receiver (signal delivery included), against the
/// polling protocol. The gap is why the libraries avoid interrupts
/// (paper §6).
pub fn interrupt_per_message() -> (f64, f64) {
    // Polling baseline: the raw AU ping-pong.
    let polling =
        vmmc_pingpong(Strategy::Au1Copy, 16, false, CostModel::shrimp_prototype()).latency_us;

    // Notification path: receiver blocks on wait_notification; sender
    // uses send_notify.
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let names_rx: SimChannel<BufferName> = SimChannel::new();
    let names_tx: SimChannel<BufferName> = SimChannel::new();
    let out: Arc<Mutex<f64>> = Arc::new(Mutex::new(0.0));
    const N: u32 = 8;
    {
        let rx = system.endpoint(1, "rx");
        let (names_rx, names_tx) = (names_rx.clone(), names_tx.clone());
        kernel.spawn("rx", move |ctx| {
            let buf = rx.proc_().alloc(4096, CacheMode::WriteBack);
            let name = rx
                .export(
                    ctx,
                    buf,
                    4096,
                    ExportOpts {
                        perms: Default::default(),
                        handler: Some(Box::new(|_, _| {})),
                        ..Default::default()
                    },
                )
                .unwrap();
            names_rx.send(&ctx.handle(), name);
            let peer_name = names_tx.recv(ctx);
            let dst = rx.import(ctx, NodeId(0), peer_name).unwrap();
            let src = rx.proc_().alloc(4096, CacheMode::WriteBack);
            for _ in 0..N + 1 {
                rx.wait_notification(ctx);
                rx.send_notify(ctx, src, &dst, 0, 16).unwrap();
            }
        });
    }
    {
        let tx = system.endpoint(0, "tx");
        let out = Arc::clone(&out);
        kernel.spawn("tx", move |ctx| {
            let buf = tx.proc_().alloc(4096, CacheMode::WriteBack);
            let name = tx
                .export(
                    ctx,
                    buf,
                    4096,
                    ExportOpts {
                        perms: Default::default(),
                        handler: Some(Box::new(|_, _| {})),
                        ..Default::default()
                    },
                )
                .unwrap();
            let peer_name = names_rx.recv(ctx);
            names_tx.send(&ctx.handle(), name);
            let dst = tx.import(ctx, NodeId(1), peer_name).unwrap();
            let src = tx.proc_().alloc(4096, CacheMode::WriteBack);
            // Warmup round.
            tx.send_notify(ctx, src, &dst, 0, 16).unwrap();
            tx.wait_notification(ctx);
            let t0 = ctx.now();
            for _ in 0..N {
                tx.send_notify(ctx, src, &dst, 0, 16).unwrap();
                tx.wait_notification(ctx);
            }
            *out.lock() = (ctx.now() - t0).as_us() / (2.0 * N as f64);
        });
    }
    kernel.run_until_quiescent().unwrap();
    let with_interrupts = *out.lock();
    (polling, with_interrupts)
}

/// A6 — the zero-copy protocol itself: one-way latency of a 3 KB NX
/// message with the rendezvous allowed to go user-to-user, against the
/// chunked one-copy fallback (zero-copy disabled).
pub fn zero_copy_on_off() -> Vec<(bool, f64)> {
    [true, false]
        .into_iter()
        .map(|allow| {
            let kernel = Kernel::new();
            let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
            let mut config = NxVariant::Au2Copy.config();
            config.allow_zero_copy = allow;
            let world = NxWorld::new(Arc::clone(&system), config, vec![0, 1]);
            let out: Arc<Mutex<f64>> = Arc::new(Mutex::new(0.0));
            let size = 3072usize;
            {
                let world = Arc::clone(&world);
                let out = Arc::clone(&out);
                kernel.spawn("tx", move |ctx| {
                    let mut nx = world.join(ctx, 0);
                    let buf = nx.vmmc().proc_().alloc(size, CacheMode::WriteBack);
                    for _ in 0..2 {
                        nx.csend(ctx, 1, buf, size, 1).unwrap();
                        nx.crecv(ctx, 2, buf, size).unwrap();
                    }
                    let t0 = ctx.now();
                    const N: u32 = 6;
                    for _ in 0..N {
                        nx.csend(ctx, 1, buf, size, 1).unwrap();
                        nx.crecv(ctx, 2, buf, size).unwrap();
                    }
                    *out.lock() = (ctx.now() - t0).as_us() / (2.0 * N as f64);
                    nx.flush(ctx).unwrap();
                });
            }
            {
                let world = Arc::clone(&world);
                kernel.spawn("rx", move |ctx| {
                    let mut nx = world.join(ctx, 1);
                    let buf = nx.vmmc().proc_().alloc(size, CacheMode::WriteBack);
                    for _ in 0..8 {
                        nx.crecv(ctx, 1, buf, size).unwrap();
                        nx.csend(ctx, 2, buf, size, 0).unwrap();
                    }
                    nx.flush(ctx).unwrap();
                });
            }
            kernel.run_until_quiescent().unwrap();
            let v = *out.lock();
            (allow, v)
        })
        .collect()
}

/// A7 — credit-return batching: messages per second of a one-way small-
/// message stream as the receiver batches credits.
pub fn credit_batch_sweep() -> Vec<(usize, f64)> {
    [1usize, 4, 8]
        .into_iter()
        .map(|batch| {
            let mut config = NxConfig::paper_default();
            config.credit_batch = batch;
            let kernel = Kernel::new();
            let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
            let world = NxWorld::new(Arc::clone(&system), config, vec![0, 1]);
            let out: Arc<Mutex<f64>> = Arc::new(Mutex::new(0.0));
            const COUNT: usize = 200;
            {
                let world = Arc::clone(&world);
                kernel.spawn("tx", move |ctx| {
                    let mut nx = world.join(ctx, 0);
                    let buf = nx.vmmc().proc_().alloc(256, CacheMode::WriteBack);
                    for _ in 0..COUNT {
                        nx.csend(ctx, 1, buf, 128, 1).unwrap();
                    }
                    nx.flush(ctx).unwrap();
                });
            }
            {
                let world = Arc::clone(&world);
                let out = Arc::clone(&out);
                kernel.spawn("rx", move |ctx| {
                    let mut nx = world.join(ctx, 1);
                    let buf = nx.vmmc().proc_().alloc(256, CacheMode::WriteBack);
                    nx.crecv(ctx, 1, buf, 256).unwrap();
                    let t0 = ctx.now();
                    for _ in 1..COUNT {
                        nx.crecv(ctx, 1, buf, 256).unwrap();
                    }
                    *out.lock() = (COUNT - 1) as f64 / (ctx.now() - t0).as_secs();
                });
            }
            kernel.run_until_quiescent().unwrap();
            let v = *out.lock();
            (batch, v)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longer_combine_timeout_raises_small_message_latency() {
        let sweep = combine_timeout_sweep();
        assert!(sweep.windows(2).all(|w| w[1].1 >= w[0].1), "{sweep:?}");
        // The sweep spans several microseconds of the latency budget.
        assert!(sweep.last().unwrap().1 - sweep[0].1 > 2.0);
    }

    #[test]
    fn combining_collapses_word_stores_into_one_packet() {
        let [(_, _lat_on, pkts_on, bus_on), (_, _lat_off, pkts_off, bus_off)] = combining_on_off();
        assert_eq!(pkts_on, 1, "combining on: one packet");
        assert_eq!(pkts_off, 16, "combining off: a packet per word store");
        // The receive path does sixteen DMA transactions instead of one.
        assert!(
            bus_off > 1.8 * bus_on,
            "rx EISA busy without combining {bus_off:.1} us vs with {bus_on:.1} us"
        );
    }

    #[test]
    fn unaligned_buffers_pay_the_marshal_copy() {
        let (aligned, unaligned) = alignment_fallback();
        assert!(
            unaligned > aligned + 5.0,
            "unaligned {unaligned:.1} us should clearly exceed aligned {aligned:.1} us"
        );
    }

    #[test]
    fn optimistic_copy_unblocks_the_sender() {
        let ((opt_blocked, opt_total), (block_blocked, block_total)) =
            optimistic_copy_on_off(16 * 1024);
        // With the safe copy the sender resumes long before the slow
        // receiver arrives; without it the sender waits for the reply.
        assert!(
            opt_blocked < block_blocked / 2.0,
            "optimistic blocked {opt_blocked:.0} us vs blocking {block_blocked:.0} us"
        );
        // End-to-end completion is similar either way.
        let ratio = opt_total / block_total;
        assert!(
            (0.5..1.5).contains(&ratio),
            "totals {opt_total:.0} vs {block_total:.0}"
        );
    }

    #[test]
    fn interrupts_per_message_cost_an_order_of_magnitude() {
        let (polling, interrupts) = interrupt_per_message();
        assert!(
            interrupts > 3.0 * polling,
            "with interrupts {interrupts:.1} us vs polling {polling:.1} us"
        );
    }

    #[test]
    fn zero_copy_beats_chunked_fallback() {
        let sweep = zero_copy_on_off();
        let (zc, chunked) = (sweep[0].1, sweep[1].1);
        assert!(
            (zc - chunked).abs() > 5.0,
            "zero-copy {zc:.1} us vs chunked {chunked:.1} us should differ"
        );
    }

    #[test]
    fn credit_batching_reduces_control_traffic() {
        let sweep = credit_batch_sweep();
        // Throughput should not degrade with batching (fewer credit
        // writes on the receiver's critical path).
        assert!(sweep[2].1 >= sweep[0].1 * 0.95, "{sweep:?}");
    }
}
