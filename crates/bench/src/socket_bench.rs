//! Figure 7 and the §4.3 ttcp measurements: stream-socket latency,
//! bandwidth, and one-way throughput.

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{ShrimpSystem, SystemConfig};
use shrimp_mesh::NodeId;
use shrimp_node::CostModel;
use shrimp_sim::{Kernel, SimDur, SimTime};
use shrimp_sockets::{connect, listen, SocketVariant};

use crate::report::Point;

const WARMUP: u32 = 2;
const ROUNDS: u32 = 8;

/// The three socket curves of Figure 7.
pub fn socket_variants() -> [SocketVariant; 3] {
    [
        SocketVariant::Au2Copy,
        SocketVariant::Du1Copy,
        SocketVariant::Du2Copy,
    ]
}

/// The paper's legend label for a variant.
pub fn variant_label(v: SocketVariant) -> &'static str {
    match v {
        SocketVariant::Au2Copy => "AU-2copy",
        SocketVariant::Du1Copy => "DU-1copy",
        SocketVariant::Du2Copy => "DU-2copy",
    }
}

/// Socket ping-pong for one (variant, size) cell.
pub fn socket_pingpong(variant: SocketVariant, size: usize, costs: CostModel) -> Point {
    let kernel = Kernel::new();
    let mut config = SystemConfig::prototype();
    config.costs = costs;
    let system = ShrimpSystem::build(&kernel, config);
    let result: Arc<Mutex<Option<(SimTime, SimTime)>>> = Arc::new(Mutex::new(None));

    {
        let vmmc = system.endpoint(1, "server");
        let eth = Arc::clone(system.ethernet());
        kernel.spawn("server", move |ctx| {
            let listener = listen(vmmc, eth, 7777);
            let mut sock = listener.accept(ctx).unwrap();
            for _ in 0..(WARMUP + ROUNDS) {
                let msg = sock.recv_exact(ctx, size).unwrap();
                sock.send(ctx, &msg).unwrap();
            }
        });
    }
    {
        let vmmc = system.endpoint(0, "client");
        let eth = Arc::clone(system.ethernet());
        let result = Arc::clone(&result);
        kernel.spawn("client", move |ctx| {
            let mut sock = connect(vmmc, ctx, &eth, NodeId(1), 7777, variant).unwrap();
            let msg: Vec<u8> = (0..size).map(|i| (i % 239) as u8).collect();
            for _ in 0..WARMUP {
                sock.send(ctx, &msg).unwrap();
                let echo = sock.recv_exact(ctx, size).unwrap();
                assert_eq!(echo, msg);
            }
            let t0 = ctx.now();
            for _ in 0..ROUNDS {
                sock.send(ctx, &msg).unwrap();
                sock.recv_exact(ctx, size).unwrap();
            }
            *result.lock() = Some((t0, ctx.now()));
            sock.close(ctx).unwrap();
        });
    }
    kernel
        .run_until_quiescent()
        .expect("socket ping-pong failed");
    assert!(system.violations().is_empty());
    let (t0, t1) = result.lock().expect("client never finished");
    let one_way_us = (t1 - t0).as_us() / (2.0 * ROUNDS as f64);
    Point {
        size,
        latency_us: one_way_us,
        bandwidth_mbs: size as f64 / one_way_us,
    }
}

/// One-way continuous pump, ttcp-style: the sender streams `count`
/// messages of `size` bytes; bandwidth is measured at the receiver.
/// `ttcp_overhead_per_write` models the benchmark program's own
/// per-write work (buffer refill and accounting) — zero for the
/// library's own microbenchmark.
pub fn one_way_pump(
    variant: SocketVariant,
    size: usize,
    count: usize,
    ttcp_overhead_per_write: SimDur,
    costs: CostModel,
) -> f64 {
    let kernel = Kernel::new();
    let mut config = SystemConfig::prototype();
    config.costs = costs;
    let system = ShrimpSystem::build(&kernel, config);
    let bw: Arc<Mutex<f64>> = Arc::new(Mutex::new(0.0));

    {
        let vmmc = system.endpoint(1, "sink");
        let eth = Arc::clone(system.ethernet());
        let bw = Arc::clone(&bw);
        kernel.spawn("sink", move |ctx| {
            let listener = listen(vmmc, eth, 5001); // ttcp's default port
            let mut sock = listener.accept(ctx).unwrap();
            // Skip the first message (pipeline fill), then time the rest.
            sock.recv_exact(ctx, size).unwrap();
            let t0 = ctx.now();
            let mut got = 0usize;
            loop {
                let chunk = sock.recv(ctx, size).unwrap();
                if chunk.is_empty() {
                    break;
                }
                got += chunk.len();
            }
            let dt = (ctx.now() - t0).as_us();
            *bw.lock() = got as f64 / dt;
        });
    }
    {
        let vmmc = system.endpoint(0, "pump");
        let eth = Arc::clone(system.ethernet());
        kernel.spawn("pump", move |ctx| {
            let mut sock = connect(vmmc, ctx, &eth, NodeId(1), 5001, variant).unwrap();
            let msg: Vec<u8> = (0..size).map(|i| (i % 239) as u8).collect();
            for _ in 0..count {
                if !ttcp_overhead_per_write.is_zero() {
                    ctx.advance(ttcp_overhead_per_write);
                }
                sock.send(ctx, &msg).unwrap();
            }
            sock.close(ctx).unwrap();
        });
    }
    kernel.run_until_quiescent().expect("one-way pump failed");
    assert!(system.violations().is_empty());
    let v = *bw.lock();
    v
}

/// The per-write overhead of the ttcp benchmark program itself (pattern
/// generation into its buffer and loop accounting), calibrated against
/// the paper's 8.6 MB/s vs 9.8 MB/s comparison at 7 KB.
pub fn ttcp_write_overhead(size: usize) -> SimDur {
    // Dominated by ttcp regenerating its source pattern per write.
    SimDur::from_ns(10.0 * size as f64 + 26_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pingpong::{vmmc_pingpong, Strategy};

    #[test]
    fn small_message_overhead_near_13us_over_hardware() {
        let hw = vmmc_pingpong(Strategy::Au2Copy, 16, false, CostModel::shrimp_prototype());
        let s = socket_pingpong(SocketVariant::Au2Copy, 16, CostModel::shrimp_prototype());
        let overhead = s.latency_us - hw.latency_us;
        assert!(
            (8.0..18.0).contains(&overhead),
            "socket small-message overhead {overhead:.1} us over hardware (paper: ~13)"
        );
    }

    #[test]
    fn large_messages_approach_one_copy_limit() {
        let hw = vmmc_pingpong(
            Strategy::Du1Copy,
            10240,
            false,
            CostModel::shrimp_prototype(),
        );
        let s = socket_pingpong(SocketVariant::Du1Copy, 10240, CostModel::shrimp_prototype());
        assert!(
            s.bandwidth_mbs > 0.75 * hw.bandwidth_mbs,
            "socket large-message bandwidth {:.1} vs raw one-copy {:.1}",
            s.bandwidth_mbs,
            hw.bandwidth_mbs
        );
    }

    #[test]
    fn one_way_pump_beats_pingpong_bandwidth() {
        let pp = socket_pingpong(SocketVariant::Du1Copy, 7168, CostModel::shrimp_prototype());
        let ow = one_way_pump(
            SocketVariant::Du1Copy,
            7168,
            20,
            SimDur::ZERO,
            CostModel::shrimp_prototype(),
        );
        assert!(
            ow > pp.bandwidth_mbs,
            "one-way {ow:.1} vs ping-pong {:.1}",
            pp.bandwidth_mbs
        );
    }

    #[test]
    fn ttcp_is_slower_than_the_library_microbenchmark() {
        let lib = one_way_pump(
            SocketVariant::Du1Copy,
            7168,
            20,
            SimDur::ZERO,
            CostModel::shrimp_prototype(),
        );
        let ttcp = one_way_pump(
            SocketVariant::Du1Copy,
            7168,
            20,
            ttcp_write_overhead(7168),
            CostModel::shrimp_prototype(),
        );
        assert!(
            ttcp < lib,
            "ttcp {ttcp:.1} should trail the library's {lib:.1}"
        );
        let ratio = ttcp / lib;
        assert!(
            (0.7..1.0).contains(&ratio),
            "ratio {ratio:.2} (paper: 8.6 vs 9.8 = 0.88)"
        );
    }
}
