//! Collective-communication scaling study, built directly on the
//! `shrimp-coll` communicator (no NX layer in between): barrier
//! latency and allreduce latency/bandwidth at 2x2, 4x4, and 8x8
//! meshes, plus the allreduce algorithm-crossover sweep that
//! calibrates the size selector ([`shrimp_coll::RD_CUTOFF_BYTES`]).
//!
//! Every number derives from virtual time, so the rendered report is
//! byte-identical across reruns with the same seed. Each sweep also
//! verifies the reduced values against a host-side reference, so the
//! bench doubles as an end-to-end correctness check at 64 ranks —
//! a scale the test suite's proptest cases do not reach.

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_coll::{AllreduceAlg, CollConfig, CollWorld, ReduceOp};
use shrimp_core::{ShrimpSystem, SystemConfig};
use shrimp_mesh::{Mesh2D, TopologyRef};
use shrimp_node::CacheMode;
use shrimp_sim::{Kernel, SplitMix64};

/// One measured allreduce point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Payload size in bytes (8-byte lanes).
    pub bytes: usize,
    /// Time per allreduce in microseconds (slowest rank, averaged over
    /// rounds).
    pub us_per_op: f64,
    /// Aggregate delivered rate across all ranks, `n * bytes / time`,
    /// in MB/s.
    pub aggregate_mbs: f64,
}

fn build_with(
    topo: TopologyRef,
    config: CollConfig,
) -> (Kernel, Arc<ShrimpSystem>, Arc<CollWorld>) {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::with_topology(topo));
    // One rank per fabric node, in enumeration order.
    let nodes: Vec<usize> = system.topology().nodes().map(|n| n.0).collect();
    let world = CollWorld::new(Arc::clone(&system), config, nodes);
    (kernel, system, world)
}

/// Deterministic small-integer lanes (exact under `SumI64` regardless
/// of combining order).
fn input_lanes(seed: u64, rank: usize, count: usize) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed ^ (rank as u64).wrapping_mul(0x9E37_79B9));
    let mut out = Vec::with_capacity(count * 8);
    for _ in 0..count {
        let v = (rng.next_u64() % 201) as i64 - 100;
        out.extend(v.to_le_bytes());
    }
    out
}

fn expected_sum(n: usize, seed: u64, count: usize) -> Vec<u8> {
    let mut acc = input_lanes(seed, 0, count);
    for r in 1..n {
        ReduceOp::SumI64.fold(&mut acc, &input_lanes(seed, r, count));
    }
    acc
}

/// Barrier latency averaged over `rounds`, in microseconds, through
/// the collective layer directly.
pub fn barrier_latency(width: usize, height: usize, rounds: u32) -> f64 {
    barrier_latency_on(Arc::new(Mesh2D::new(width, height)), rounds)
}

/// [`barrier_latency`] over an arbitrary in-order fabric.
pub fn barrier_latency_on(topo: TopologyRef, rounds: u32) -> f64 {
    barrier_latency_with(topo, CollConfig::default(), rounds)
}

/// [`barrier_latency`] over an arbitrary in-order fabric, with an
/// explicit engine choice (e.g. `CollImpl::Hardware` offload).
pub fn barrier_latency_with(topo: TopologyRef, config: CollConfig, rounds: u32) -> f64 {
    let (kernel, system, world) = build_with(topo, config);
    let n = system.len();
    let out: Arc<Mutex<f64>> = Arc::new(Mutex::new(0.0));
    for rank in 0..n {
        let world = Arc::clone(&world);
        let out = Arc::clone(&out);
        kernel.spawn(format!("rank{rank}"), move |ctx| {
            let mut comm = world.join(ctx, rank);
            comm.barrier(ctx).unwrap(); // warm-up
            let t0 = ctx.now();
            for _ in 0..rounds {
                comm.barrier(ctx).unwrap();
            }
            if rank == 0 {
                *out.lock() = (ctx.now() - t0).as_us() / rounds as f64;
            }
        });
    }
    kernel.run_until_quiescent().expect("barrier bench failed");
    assert!(system.violations().is_empty());
    let v = *out.lock();
    v
}

/// Sweep allreduce over `sizes` on one `width x height` mesh with one
/// algorithm (`None` = let the size selector choose per size). Each
/// size runs `rounds` timed operations; every rank checks the final
/// result against a host-side reference.
pub fn allreduce_sweep(
    width: usize,
    height: usize,
    sizes: &[usize],
    alg: Option<AllreduceAlg>,
    rounds: u32,
    seed: u64,
) -> Vec<SweepPoint> {
    allreduce_sweep_with(
        Arc::new(Mesh2D::new(width, height)),
        CollConfig::default(),
        sizes,
        alg,
        rounds,
        seed,
    )
}

/// [`allreduce_sweep`] over an arbitrary in-order fabric with an
/// explicit engine choice. With `CollImpl::Hardware` and `alg = None`
/// the rounds offload to the in-network combining stage.
pub fn allreduce_sweep_with(
    topo: TopologyRef,
    config: CollConfig,
    sizes: &[usize],
    alg: Option<AllreduceAlg>,
    rounds: u32,
    seed: u64,
) -> Vec<SweepPoint> {
    let (kernel, system, world) = build_with(topo, config);
    let n = system.len();
    let starts: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(vec![0; sizes.len()]));
    let finishes: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(vec![0; sizes.len()]));
    let sizes_own: Vec<usize> = sizes.to_vec();
    for rank in 0..n {
        let world = Arc::clone(&world);
        let starts = Arc::clone(&starts);
        let finishes = Arc::clone(&finishes);
        let sizes = sizes_own.clone();
        kernel.spawn(format!("rank{rank}"), move |ctx| {
            let mut comm = world.join(ctx, rank);
            let p = comm.vmmc().proc_().clone();
            let maxb = sizes.iter().copied().max().unwrap_or(8).max(8);
            let buf = p.alloc(maxb, CacheMode::WriteBack);
            for (i, &bytes) in sizes.iter().enumerate() {
                let count = bytes / 8;
                let input = input_lanes(seed, rank, count);
                comm.barrier(ctx).unwrap();
                if rank == 0 {
                    starts.lock()[i] = ctx.now().as_ps();
                }
                for _ in 0..rounds {
                    // The result overwrites the operand; refill so every
                    // round reduces the same inputs. Host-side fill costs
                    // no virtual time.
                    p.poke(buf, &input).unwrap();
                    match alg {
                        Some(a) => comm
                            .allreduce_with(ctx, buf, count, ReduceOp::SumI64, a)
                            .unwrap(),
                        None => comm.allreduce(ctx, buf, count, ReduceOp::SumI64).unwrap(),
                    }
                }
                let f = ctx.now().as_ps();
                {
                    let mut fin = finishes.lock();
                    fin[i] = fin[i].max(f);
                }
                let got = p.peek(buf, bytes).unwrap();
                assert_eq!(
                    got,
                    expected_sum(comm.len(), seed, count),
                    "rank {rank}: allreduce result mismatch at {bytes} bytes"
                );
                comm.barrier(ctx).unwrap();
            }
        });
    }
    kernel
        .run_until_quiescent()
        .expect("allreduce sweep failed");
    assert!(system.violations().is_empty());
    let starts = starts.lock();
    let finishes = finishes.lock();
    sizes
        .iter()
        .enumerate()
        .map(|(i, &bytes)| {
            let us = (finishes[i] - starts[i]) as f64 / 1e6 / rounds as f64;
            SweepPoint {
                bytes,
                us_per_op: us,
                aggregate_mbs: (n * bytes) as f64 / us,
            }
        })
        .collect()
}

/// Report label for an algorithm choice.
pub fn alg_label(alg: Option<AllreduceAlg>) -> &'static str {
    match alg {
        Some(AllreduceAlg::RingRsAg) => "ring-rs-ag",
        Some(AllreduceAlg::RecursiveDoubling) => "recursive-doubling",
        None => "selected",
    }
}

/// The meshes the study covers: the 4-node prototype, the 16-node
/// machine of paper §8, and one step beyond.
pub fn meshes(smoke: bool) -> Vec<(usize, usize)> {
    if smoke {
        vec![(2, 2), (4, 4)]
    } else {
        vec![(2, 2), (4, 4), (8, 8)]
    }
}

/// Payload sizes for the per-mesh scaling series.
pub fn scaling_sizes(smoke: bool) -> Vec<usize> {
    if smoke {
        vec![64, 1024, 8192]
    } else {
        vec![64, 1024, 8192, 65536]
    }
}

/// Payload sizes for the 4x4 algorithm-crossover sweep.
pub fn crossover_sizes(smoke: bool) -> Vec<usize> {
    if smoke {
        vec![64, 1024, 16384]
    } else {
        vec![64, 256, 1024, 4096, 16384, 65536]
    }
}

const BARRIER_ROUNDS: u32 = 4;
const SWEEP_ROUNDS: u32 = 2;

/// Run the full study and render the deterministic report: barrier
/// latency per mesh, a ring allreduce series per mesh, and the
/// ring-vs-recursive-doubling crossover at 4x4 with the selector's
/// choice alongside.
pub fn render_report(seed: u64, smoke: bool) -> String {
    let mut out = format!("collectives report seed={seed}\n");
    for (w, h) in meshes(smoke) {
        let us = barrier_latency(w, h, BARRIER_ROUNDS);
        out.push_str(&format!(
            "barrier mesh={w}x{h} ranks={} us={us:.2}\n",
            w * h
        ));
    }
    let sizes = scaling_sizes(smoke);
    for (w, h) in meshes(smoke) {
        out.push_str(&format!("series allreduce mesh={w}x{h} alg=ring-rs-ag\n"));
        let pts = allreduce_sweep(
            w,
            h,
            &sizes,
            Some(AllreduceAlg::RingRsAg),
            SWEEP_ROUNDS,
            seed,
        );
        for p in pts {
            out.push_str(&format!(
                "point mesh={w}x{h} alg=ring-rs-ag bytes={} us={:.2} agg_mbs={:.2}\n",
                p.bytes, p.us_per_op, p.aggregate_mbs
            ));
        }
    }
    let cs = crossover_sizes(smoke);
    out.push_str("series crossover mesh=4x4\n");
    let mut crossover_at: Option<usize> = None;
    let ring = allreduce_sweep(4, 4, &cs, Some(AllreduceAlg::RingRsAg), SWEEP_ROUNDS, seed);
    let rd = allreduce_sweep(
        4,
        4,
        &cs,
        Some(AllreduceAlg::RecursiveDoubling),
        SWEEP_ROUNDS,
        seed,
    );
    let sel = allreduce_sweep(4, 4, &cs, None, SWEEP_ROUNDS, seed);
    for i in 0..cs.len() {
        let winner = if rd[i].us_per_op <= ring[i].us_per_op {
            "recursive-doubling"
        } else {
            "ring-rs-ag"
        };
        if winner == "ring-rs-ag" && crossover_at.is_none() {
            crossover_at = Some(cs[i]);
        }
        out.push_str(&format!(
            "point mesh=4x4 bytes={} ring_us={:.2} rd_us={:.2} selected_us={:.2} winner={winner}\n",
            cs[i], ring[i].us_per_op, rd[i].us_per_op, sel[i].us_per_op
        ));
    }
    match crossover_at {
        Some(b) => out.push_str(&format!(
            "crossover first_ring_win_bytes={b} selector_cutoff_bytes={}\n",
            shrimp_coll::RD_CUTOFF_BYTES
        )),
        None => out.push_str("crossover none-observed\n"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_grows_logarithmically_4_to_16() {
        let b4 = barrier_latency(2, 2, 4);
        let b16 = barrier_latency(4, 4, 4);
        let ratio = b16 / b4;
        assert!(
            (1.3..3.2).contains(&ratio),
            "barrier 4n {b4:.1} us -> 16n {b16:.1} us (x{ratio:.2})"
        );
    }

    #[test]
    fn ring_allreduce_aggregate_bandwidth_scales_4_to_16() {
        let sizes = [32768usize];
        let p4 = allreduce_sweep(2, 2, &sizes, Some(AllreduceAlg::RingRsAg), 2, 7);
        let p16 = allreduce_sweep(4, 4, &sizes, Some(AllreduceAlg::RingRsAg), 2, 7);
        assert!(
            p16[0].aggregate_mbs > 2.0 * p4[0].aggregate_mbs,
            "ring allreduce aggregate bandwidth should scale: 4n {:.0} MB/s vs 16n {:.0} MB/s",
            p4[0].aggregate_mbs,
            p16[0].aggregate_mbs
        );
    }

    #[test]
    fn allreduce_algorithms_cross_over_with_size() {
        let sizes = [64usize, 65536];
        let ring = allreduce_sweep(4, 4, &sizes, Some(AllreduceAlg::RingRsAg), 2, 7);
        let rd = allreduce_sweep(4, 4, &sizes, Some(AllreduceAlg::RecursiveDoubling), 2, 7);
        assert!(
            rd[0].us_per_op < ring[0].us_per_op,
            "recursive doubling should win at 64 B: rd {:.1} us vs ring {:.1} us",
            rd[0].us_per_op,
            ring[0].us_per_op
        );
        assert!(
            ring[1].us_per_op < rd[1].us_per_op,
            "ring should win at 64 KiB: ring {:.1} us vs rd {:.1} us",
            ring[1].us_per_op,
            rd[1].us_per_op
        );
    }

    #[test]
    fn smoke_report_is_bit_identical_for_same_seed() {
        let a = render_report(5, true);
        let b = render_report(5, true);
        assert_eq!(a, b, "same seed must render bit-identically");
        assert!(a.contains("series allreduce mesh=4x4 alg=ring-rs-ag"));
        assert!(a.contains("series crossover mesh=4x4"));
    }
}
