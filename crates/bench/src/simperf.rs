//! Wall-clock performance harness for the simulation engine itself.
//!
//! Everything else in this crate measures *virtual* time — the modelled
//! hardware. This module measures *host* time: how many wall seconds
//! and allocations the simulator burns to execute representative
//! workloads, and how many scheduled items per second the event kernel
//! sustains. It exists to keep the simulator fast enough that large
//! meshes and chaos sweeps are bound by the modelled hardware, not by
//! `Box<dyn FnOnce>` churn and condvar handshakes.
//!
//! The workloads are the repo's own figures, reused verbatim so the
//! numbers track real usage:
//!
//! * `fig3` — VMMC base-layer ping-pong, all four copy strategies;
//! * `fig7` — stream-socket ping-pong, all three variants;
//! * `coll4x4` — barrier + allreduce scaling study on a 4×4 mesh;
//! * `coll8x8` — the same on an 8×8 mesh (64 process threads), the
//!   headline number for engine-overhaul PRs.
//!
//! Virtual results (latencies, reduced values) are checked against the
//! same invariants the figure binaries assert, so a simperf run is also
//! an end-to-end correctness pass; and because virtual time is
//! deterministic, any two builds must agree on every virtual output
//! while differing only in wall cost.

use std::time::Instant;

use shrimp_node::CostModel;
use shrimp_sim::metrics::MetricsSnapshot;
use shrimp_sim::MetricsRegistry;

use crate::collectives::{allreduce_sweep, barrier_latency};
use crate::pingpong::{vmmc_pingpong, Strategy};
use crate::socket_bench::{socket_pingpong, socket_variants};
use crate::{paper_sizes, Point};

/// Measured host-side cost of one workload.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Workload name (`fig3`, `fig7`, `coll4x4`, `coll8x8`).
    pub name: &'static str,
    /// Wall-clock seconds to run the workload.
    pub wall_s: f64,
    /// Engine counter deltas attributed to the workload.
    pub metrics: MetricsSnapshot,
    /// Heap allocations during the workload (0 when the caller
    /// installed no counting allocator).
    pub allocs: u64,
    /// Bytes requested from the allocator during the workload.
    pub alloc_bytes: u64,
    /// A virtual-time checksum: a stable digest of the workload's
    /// modelled results. Must be bit-identical across engine changes.
    pub virt_digest: u64,
}

impl WorkloadResult {
    /// Scheduled items (events + resumes) executed per wall second.
    pub fn items_per_sec(&self) -> f64 {
        self.metrics.items() as f64 / self.wall_s.max(1e-12)
    }
}

/// Allocation counter hooks. The `simperf` binary installs a counting
/// global allocator and passes its readers here; library users (tests)
/// pass [`no_alloc_counter`].
pub type AllocCounter = fn() -> (u64, u64);

/// The no-op allocation counter.
pub fn no_alloc_counter() -> (u64, u64) {
    (0, 0)
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

fn digest_points(h: &mut u64, points: &[Point]) {
    for p in points {
        fnv1a(h, &p.size.to_le_bytes());
        fnv1a(h, &p.latency_us.to_bits().to_le_bytes());
        fnv1a(h, &p.bandwidth_mbs.to_bits().to_le_bytes());
    }
}

fn run_workload(
    name: &'static str,
    alloc_counter: AllocCounter,
    body: impl FnOnce() -> u64,
) -> WorkloadResult {
    let (a0, b0) = alloc_counter();
    // A fresh registry per workload: counters attribute exactly to the
    // kernels this workload builds, not additively across workloads.
    let registry = MetricsRegistry::new();
    let guard = registry.install();
    let t0 = Instant::now();
    let virt_digest = body();
    let wall_s = t0.elapsed().as_secs_f64();
    drop(guard);
    let metrics = registry.snapshot();
    let (a1, b1) = alloc_counter();
    WorkloadResult {
        name,
        wall_s,
        metrics,
        allocs: a1.saturating_sub(a0),
        alloc_bytes: b1.saturating_sub(b0),
        virt_digest,
    }
}

/// The `fig3` workload: VMMC ping-pong, four strategies over the
/// paper's message sizes.
pub fn workload_fig3(alloc_counter: AllocCounter) -> WorkloadResult {
    run_workload("fig3", alloc_counter, || {
        let sizes = paper_sizes();
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for strategy in Strategy::all() {
            let pts: Vec<Point> = sizes
                .iter()
                .map(|&s| vmmc_pingpong(strategy, s, false, CostModel::shrimp_prototype()))
                .collect();
            digest_points(&mut h, &pts);
        }
        h
    })
}

/// The `fig7` workload: stream-socket ping-pong, three variants over
/// the paper's message sizes.
pub fn workload_fig7(alloc_counter: AllocCounter) -> WorkloadResult {
    run_workload("fig7", alloc_counter, || {
        let sizes = paper_sizes();
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for variant in socket_variants() {
            let pts: Vec<Point> = sizes
                .iter()
                .map(|&s| socket_pingpong(variant, s, CostModel::shrimp_prototype()))
                .collect();
            digest_points(&mut h, &pts);
        }
        h
    })
}

fn workload_coll(
    name: &'static str,
    width: usize,
    height: usize,
    sizes: &[usize],
    rounds: u32,
    alloc_counter: AllocCounter,
) -> WorkloadResult {
    run_workload(name, alloc_counter, || {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let barrier_us = barrier_latency(width, height, rounds.max(4));
        fnv1a(&mut h, &barrier_us.to_bits().to_le_bytes());
        for pt in allreduce_sweep(width, height, sizes, None, rounds, 42) {
            fnv1a(&mut h, &pt.bytes.to_le_bytes());
            fnv1a(&mut h, &pt.us_per_op.to_bits().to_le_bytes());
        }
        h
    })
}

/// The `coll4x4` workload: barrier + allreduce sweep on a 4×4 mesh.
pub fn workload_coll4x4(alloc_counter: AllocCounter) -> WorkloadResult {
    workload_coll("coll4x4", 4, 4, &[64, 1024, 8192], 4, alloc_counter)
}

/// The `coll8x8` workload: barrier + allreduce sweep on an 8×8 mesh —
/// 64 blocking process threads, the engine's worst case and the
/// headline number for simulator-throughput work.
pub fn workload_coll8x8(alloc_counter: AllocCounter) -> WorkloadResult {
    workload_coll("coll8x8", 8, 8, &[64, 1024, 8192, 65536], 3, alloc_counter)
}

type WorkloadFn = fn(AllocCounter) -> WorkloadResult;

/// Run every workload (or the named subset) in a fixed order.
pub fn run_all(only: Option<&str>, alloc_counter: AllocCounter) -> Vec<WorkloadResult> {
    let all: [(&str, WorkloadFn); 4] = [
        ("fig3", workload_fig3),
        ("fig7", workload_fig7),
        ("coll4x4", workload_coll4x4),
        ("coll8x8", workload_coll8x8),
    ];
    all.iter()
        .filter(|(n, _)| only.is_none_or(|o| o == *n))
        .map(|(_, f)| f(alloc_counter))
        .collect()
}

/// Render results as the `BENCH_simperf.json` fragment for this run.
pub fn render_json(results: &[WorkloadResult]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_s\": {:.4}, \"items\": {}, \"items_per_sec\": {:.0}, \
             \"events\": {}, \"resumes\": {}, \"fast_resumes\": {}, \"allocs\": {}, \
             \"alloc_bytes\": {}, \"virt_digest\": \"{:016x}\"}}{}",
            r.name,
            r.wall_s,
            r.metrics.items(),
            r.items_per_sec(),
            r.metrics.events_executed,
            r.metrics.resumes,
            r.metrics.fast_resumes,
            r.allocs,
            r.alloc_bytes,
            r.virt_digest,
            if i + 1 == results.len() { "\n" } else { ",\n" },
        ));
    }
    out.push_str("  ]");
    out
}

/// Extract `"wall_s": <x>` for workload `name` from a committed
/// `BENCH_simperf.json`. Minimal scan, no JSON dependency: finds the
/// object containing `"name": "<name>"` inside the given section and
/// reads its `wall_s` field.
pub fn baseline_wall_s(json: &str, section: &str, name: &str) -> Option<f64> {
    let sec = json.find(&format!("\"{section}\""))?;
    let tail = &json[sec..];
    let end = tail.find(']').unwrap_or(tail.len());
    let tail = &tail[..end];
    let obj = tail.find(&format!("\"name\": \"{name}\""))?;
    let tail = &tail[obj..];
    let ws = tail.find("\"wall_s\":")?;
    let tail = &tail[ws + "\"wall_s\":".len()..];
    let num: String = tail
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect();
    num.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_digest_is_deterministic() {
        let a = workload_fig3(no_alloc_counter);
        let b = workload_fig3(no_alloc_counter);
        assert_eq!(a.virt_digest, b.virt_digest);
        assert!(a.metrics.items() > 0);
    }

    #[test]
    fn baseline_parser_reads_committed_shape() {
        let json = r#"{
  "after": [
    {"name": "fig3", "wall_s": 0.1234, "items": 10},
    {"name": "coll8x8", "wall_s": 2.5, "items": 20}
  ]
}"#;
        assert_eq!(baseline_wall_s(json, "after", "fig3"), Some(0.1234));
        assert_eq!(baseline_wall_s(json, "after", "coll8x8"), Some(2.5));
        assert_eq!(baseline_wall_s(json, "after", "nope"), None);
        assert_eq!(baseline_wall_s(json, "before", "fig3"), None);
    }
}
