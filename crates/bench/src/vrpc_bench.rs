//! Figure 5: VRPC null-call round-trip latency and bandwidth, with a
//! single opaque argument and a single opaque result of equal size.

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{ShrimpSystem, SystemConfig};
use shrimp_node::CostModel;
use shrimp_sim::{Kernel, SimTime};
use shrimp_sunrpc::{AcceptStat, RpcDirectory, StreamVariant, VrpcClient, VrpcServer};

use crate::report::Point;

const PROG: u32 = 0x2000_0001;
const VERS: u32 = 1;
const WARMUP: u32 = 2;
const ROUNDS: u32 = 8;

/// Figure 5's two curves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VrpcVariant {
    /// Data by deliberate update (one copy: the receive-side XDR decode).
    Du1Copy,
    /// Data by automatic update (one copy likewise; the marshal stores
    /// are the send).
    Au1Copy,
}

impl VrpcVariant {
    /// Paper legend label.
    pub fn label(self) -> &'static str {
        match self {
            VrpcVariant::Du1Copy => "DU-1copy",
            VrpcVariant::Au1Copy => "AU-1copy",
        }
    }

    /// Both, in the paper's legend order.
    pub fn all() -> [VrpcVariant; 2] {
        [VrpcVariant::Du1Copy, VrpcVariant::Au1Copy]
    }

    fn stream(self) -> StreamVariant {
        match self {
            VrpcVariant::Du1Copy => StreamVariant::DeliberateUpdate,
            VrpcVariant::Au1Copy => StreamVariant::AutomaticUpdate,
        }
    }
}

/// Run the Figure 5 experiment for one (variant, size) cell. The
/// reported latency is the **round-trip** time (as in the paper's
/// Figure 5); bandwidth counts argument plus result bytes.
pub fn vrpc_roundtrip(variant: VrpcVariant, size: usize, costs: CostModel) -> Point {
    let kernel = Kernel::new();
    let mut config = SystemConfig::prototype();
    config.costs = costs;
    let system = ShrimpSystem::build(&kernel, config);
    let dir = RpcDirectory::new();
    let result: Arc<Mutex<Option<(SimTime, SimTime)>>> = Arc::new(Mutex::new(None));

    {
        let vmmc = system.endpoint(1, "server");
        let dir = Arc::clone(&dir);
        kernel.spawn("server", move |ctx| {
            let mut server = VrpcServer::new(vmmc, PROG, VERS);
            server.register(
                1, // null procedure with one INOUT opaque argument
                Box::new(|_ctx, args, out| {
                    let Ok(data) = args.get_opaque() else {
                        return AcceptStat::GarbageArgs;
                    };
                    out.put_opaque(data);
                    AcceptStat::Success
                }),
            );
            let mut conn = server.accept(ctx, &dir).unwrap();
            server.serve(ctx, &mut conn).unwrap();
        });
    }
    {
        let vmmc = system.endpoint(0, "client");
        let dir = Arc::clone(&dir);
        let result = Arc::clone(&result);
        kernel.spawn("client", move |ctx| {
            let mut client =
                VrpcClient::bind(vmmc, ctx, &dir, PROG, VERS, variant.stream()).unwrap();
            let arg = vec![0x7Eu8; size];
            for _ in 0..WARMUP {
                let a = arg.clone();
                let r = client
                    .call(
                        ctx,
                        1,
                        move |e| e.put_opaque(&a),
                        |d| Ok(d.get_opaque()?.to_vec()),
                    )
                    .unwrap();
                assert_eq!(r.len(), size);
            }
            let t0 = ctx.now();
            for _ in 0..ROUNDS {
                let a = arg.clone();
                client
                    .call(
                        ctx,
                        1,
                        move |e| e.put_opaque(&a),
                        |d| Ok(d.get_opaque()?.to_vec()),
                    )
                    .unwrap();
            }
            *result.lock() = Some((t0, ctx.now()));
            client.close(ctx).unwrap();
        });
    }
    kernel.run_until_quiescent().expect("VRPC bench failed");
    assert!(system.violations().is_empty());
    let (t0, t1) = result.lock().expect("client never finished");
    let rtt_us = (t1 - t0).as_us() / ROUNDS as f64;
    Point {
        size,
        latency_us: rtt_us,
        bandwidth_mbs: (2 * size) as f64 / rtt_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_rpc_round_trip_near_29us() {
        let p = vrpc_roundtrip(VrpcVariant::Au1Copy, 4, CostModel::shrimp_prototype());
        assert!(
            (p.latency_us - 29.0).abs() < 4.0,
            "null VRPC round trip {:.1} us vs paper ~29",
            p.latency_us
        );
    }

    #[test]
    fn du_and_au_converge_for_large_arguments() {
        let au = vrpc_roundtrip(VrpcVariant::Au1Copy, 10240, CostModel::shrimp_prototype());
        let du = vrpc_roundtrip(VrpcVariant::Du1Copy, 10240, CostModel::shrimp_prototype());
        let ratio = au.bandwidth_mbs / du.bandwidth_mbs;
        assert!((0.7..1.4).contains(&ratio), "AU {au:?} vs DU {du:?}");
    }
}
