//! `simprof` — virtual-time profiles of the paper's workloads through
//! the `shrimp-obs` subsystem.
//!
//! Where `simperf` measures *host* cost (wall seconds, allocations),
//! this module decomposes *virtual* time: it reruns a figure workload
//! with a [`Recorder`] installed and attributes every picosecond of a
//! message's end-to-end latency to a stack layer. The headline outputs
//! reproduce the paper's two decomposition claims:
//!
//! * **Fig. 5 budget** (`fig5`): a null VRPC call split into header
//!   preparation / transfer + wait / header processing / return from
//!   call, summing *exactly* to the round-trip time;
//! * **§5 SRPC decomposition** (`srpc`): the specialized RPC's marshal /
//!   transfer + wait / server dispatch / unmarshal split, next to the
//!   software-only overhead rerun (paper: "under 1 µsec per call").
//!
//! `fig3`, `fig7`, and `coll4x4` rerun the corresponding simperf
//! workloads under observation and report per-layer phase statistics
//! plus the per-message conservation check. With chaos enabled, the
//! run is driven through the fault-injection engine and the fault log
//! is overlaid on the exported trace as instant events.
//!
//! Every report derives from integer-picosecond virtual time, so it is
//! byte-identical across replays; and because recording is passive, the
//! profiled run's virtual results equal the unobserved run's.

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{ShrimpSystem, SystemConfig};
use shrimp_obs::breakdown::{layer_stats, message_ids};
use shrimp_obs::{breakdown, perfetto, Layer, Recorder, SpanRec};
use shrimp_sim::{FaultEvent, FaultKind, FaultPlan, Kernel, SimDur, SimTime};
use shrimp_srpc::{parse_interface, SrpcClient, SrpcDirectory, SrpcServer, Val};
use shrimp_sunrpc::{AcceptStat, RpcDirectory, StreamVariant, VrpcClient, VrpcServer};

use crate::chaos::{run_cell_events, Workload};
use crate::rpc_compare::specialized_software_overhead;
use crate::simperf::{no_alloc_counter, workload_coll4x4, workload_fig3, workload_fig7};

const PROG: u32 = 0x2000_0001;
const VERS: u32 = 1;
const WARMUP: u32 = 2;
const ROUNDS: u32 = 8;

/// The profiles `simprof` can run.
pub const WORKLOADS: [&str; 6] = ["fig3", "fig5", "fig7", "srpc", "coll4x4", "rmc"];

/// Phase names an RPC-style workload records, used to assemble the
/// per-call budget from the span set.
#[derive(Debug, Clone, Copy)]
pub struct RpcPhases {
    /// Client-side pre-send phase (`header_prep`, `marshal`).
    pub prep: &'static str,
    /// Client-side blocked-on-reply phase.
    pub wait: &'static str,
    /// Client-side post-reply phase (`return`, `unmarshal`).
    pub ret: &'static str,
    /// Server-side dispatch phase, attributed to the call whose wait
    /// window contains it.
    pub server: &'static str,
    /// Display labels: prep, transfer + wait, server, return.
    pub labels: [&'static str; 4],
}

/// Fig. 5's phase names and row labels.
pub const FIG5_PHASES: RpcPhases = RpcPhases {
    prep: "header_prep",
    wait: "wait_reply",
    ret: "return",
    server: "header_proc",
    labels: [
        "header preparation",
        "transfer + wait",
        "header processing",
        "return from call",
    ],
};

/// §5's specialized-RPC phase names and row labels.
pub const SRPC_PHASES: RpcPhases = RpcPhases {
    prep: "marshal",
    wait: "wait_reply",
    ret: "unmarshal",
    server: "dispatch",
    labels: [
        "marshal + post call",
        "transfer + wait",
        "server dispatch",
        "unmarshal + return",
    ],
};

/// A Fig. 5-style budget: per-phase totals (integer picoseconds,
/// summed across calls) that partition the end-to-end time exactly.
#[derive(Debug, Clone)]
pub struct RpcBudget {
    /// Complete calls found in the span set.
    pub calls: u64,
    /// `(label, total ps)` rows, in paper order.
    pub rows: Vec<(&'static str, u64)>,
    /// Summed end-to-end round-trip picoseconds.
    pub end_to_end_ps: u64,
}

impl RpcBudget {
    /// The conservation invariant: rows sum exactly to end-to-end.
    pub fn is_conserved(&self) -> bool {
        self.rows.iter().map(|r| r.1).sum::<u64>() == self.end_to_end_ps
    }

    /// Render the per-call mean table.
    pub fn render(&self, title: &str) -> String {
        let per_call = |ps: u64| ps as f64 / 1e6 / self.calls.max(1) as f64;
        let mut out = format!("{title} (mean over {} calls, us):\n", self.calls);
        for (label, ps) in &self.rows {
            out.push_str(&format!("  {:<22} {:>9.3}\n", label, per_call(*ps)));
        }
        out.push_str(&format!(
            "  {:<22} {:>9.3}\n",
            "end-to-end",
            per_call(self.end_to_end_ps)
        ));
        out.push_str(&format!(
            "  conservation: {} ({} ps across {} calls)\n",
            if self.is_conserved() {
                "exact"
            } else {
                "VIOLATED"
            },
            self.end_to_end_ps,
            self.calls
        ));
        out
    }
}

/// Assemble the per-call budget from a span set: each call is the
/// `prep`/`wait`/`ret` triple sharing a [`shrimp_obs::MsgId`]; server
/// `server` spans (which carry no client id) are attributed to the call
/// whose wait window contains them; the wait remainder is transfer +
/// wait. All arithmetic is integer picoseconds, so the rows partition
/// the round trip exactly.
pub fn rpc_budget(spans: &[SpanRec], phases: &RpcPhases) -> RpcBudget {
    let mut per: std::collections::BTreeMap<u64, [Option<(SimTime, SimTime)>; 3]> =
        std::collections::BTreeMap::new();
    for s in spans {
        if s.layer != Layer::User || !s.msg.is_some() {
            continue;
        }
        let idx = if s.name == phases.prep {
            0
        } else if s.name == phases.wait {
            1
        } else if s.name == phases.ret {
            2
        } else {
            continue;
        };
        per.entry(s.msg.0).or_insert([None; 3])[idx] = Some((s.start, s.end));
    }
    let servers: Vec<(SimTime, SimTime)> = spans
        .iter()
        .filter(|s| s.name == phases.server)
        .map(|s| (s.start, s.end))
        .collect();

    let (mut prep, mut xfer, mut srv, mut ret, mut e2e, mut calls) =
        (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
    for triple in per.values() {
        let (Some(p), Some(w), Some(r)) = (triple[0], triple[1], triple[2]) else {
            continue;
        };
        calls += 1;
        prep += p.1.since(p.0).as_ps();
        let hp: u64 = servers
            .iter()
            .filter(|(s, e)| *s >= w.0 && *e <= w.1)
            .map(|(s, e)| e.since(*s).as_ps())
            .sum();
        srv += hp;
        xfer += w.1.since(w.0).as_ps().saturating_sub(hp);
        ret += r.1.since(r.0).as_ps();
        e2e += r.1.since(p.0).as_ps();
    }
    RpcBudget {
        calls,
        rows: vec![
            (phases.labels[0], prep),
            (phases.labels[1], xfer),
            (phases.labels[2], srv),
            (phases.labels[3], ret),
        ],
        end_to_end_ps: e2e,
    }
}

/// Per-message conservation sweep: every traced message's segments
/// must sum exactly to its end-to-end latency. Returns the number of
/// messages checked and whether every one conserved.
pub fn check_conservation(spans: &[SpanRec]) -> (usize, bool) {
    let ids = message_ids(spans);
    let ok = ids
        .iter()
        .filter_map(|&id| breakdown(spans, id))
        .all(|b| b.is_conserved());
    (ids.len(), ok)
}

fn render_layer_table(spans: &[SpanRec]) -> String {
    let stats = layer_stats(spans);
    let mut out = String::from(
        "per-layer phases:\n  phase                       count    mean us     min us     max us    total us\n",
    );
    for st in &stats {
        out.push_str(&format!(
            "  {:<26} {:>6} {:>10.3} {:>10.3} {:>10.3} {:>11.3}\n",
            format!("{}/{}", st.layer, st.name),
            st.count,
            st.mean().as_us(),
            st.min.as_us(),
            st.max.as_us(),
            st.total.as_us(),
        ));
    }
    out
}

/// The deterministic fault plan chaos profiles arm for the RPC
/// workloads: a mesh-wide brownout landing mid-traffic plus an IPT
/// violation on the server node.
pub fn rpc_chaos_plan() -> FaultPlan {
    FaultPlan::scripted(vec![
        FaultEvent {
            at: SimTime::ZERO + SimDur::from_us(450.0),
            kind: FaultKind::Brownout {
                factor: 2.0,
                dur: SimDur::from_us(120.0),
            },
        },
        FaultEvent {
            at: SimTime::ZERO + SimDur::from_us(500.0),
            kind: FaultKind::IptViolation { node: 1 },
        },
    ])
}

/// The scripted plan the chaos matrix uses for the figure workloads
/// (an IPT violation timed to land mid-traffic).
pub fn figure_chaos_plan() -> FaultPlan {
    FaultPlan::scripted(vec![FaultEvent {
        at: SimTime::ZERO + SimDur::from_us(900.0),
        kind: FaultKind::IptViolation { node: 1 },
    }])
}

/// Everything one profile run produced.
#[derive(Debug)]
pub struct ProfOutcome {
    /// Workload name.
    pub name: &'static str,
    /// The recorder holding every span and instant of the run.
    pub recorder: Arc<Recorder>,
    /// Rendered human-readable report.
    pub report: String,
    /// True when every conservation check passed.
    pub conserved: bool,
}

impl ProfOutcome {
    /// The run as Chrome trace-event JSON (Perfetto-loadable).
    pub fn trace_json(&self) -> String {
        perfetto::export(&self.recorder.spans(), &self.recorder.instants())
    }
}

/// Run one observed profile. Returns `None` for an unknown workload
/// name (see [`WORKLOADS`]).
pub fn profile(name: &str, chaos: bool) -> Option<ProfOutcome> {
    let rec = Recorder::new();
    let (name, mut report): (&'static str, String) = match name {
        "fig5" => {
            run_vrpc_null(&rec, chaos.then(rpc_chaos_plan).as_ref());
            let budget = rpc_budget(&rec.spans(), &FIG5_PHASES);
            let mut report = budget.render("fig5 VRPC null-call budget");
            if !budget.is_conserved() {
                report.push_str("  ERROR: budget rows do not sum to end-to-end time\n");
            }
            ("fig5", report)
        }
        "srpc" => {
            run_srpc_null(&rec, chaos.then(rpc_chaos_plan).as_ref());
            let budget = rpc_budget(&rec.spans(), &SRPC_PHASES);
            let mut report = budget.render("srpc specialized null-call decomposition");
            // The §5 software-only rerun: outside the recorder scope so
            // its spans don't pollute this profile.
            let sw_us = specialized_software_overhead();
            report.push_str(&format!(
                "  software-only rerun     {sw_us:>9.3}  (paper: < 1 us of software overhead)\n"
            ));
            ("srpc", report)
        }
        "fig3" => {
            if chaos {
                run_chaos_cell(&rec, Workload::Vmmc);
            } else {
                let _g = rec.install();
                let _ = workload_fig3(no_alloc_counter);
            }
            ("fig3", String::new())
        }
        "fig7" => {
            if chaos {
                run_chaos_cell(&rec, Workload::Socket);
            } else {
                let _g = rec.install();
                let _ = workload_fig7(no_alloc_counter);
            }
            ("fig7", String::new())
        }
        "coll4x4" => {
            if chaos {
                run_chaos_cell(&rec, Workload::Coll);
            } else {
                let _g = rec.install();
                let _ = workload_coll4x4(no_alloc_counter);
            }
            ("coll4x4", String::new())
        }
        "rmc" => {
            if chaos {
                run_chaos_cell(&rec, Workload::Rmc);
                ("rmc", String::new())
            } else {
                let section = run_rmc_fetch(&rec);
                ("rmc", section)
            }
        }
        _ => return None,
    };

    let spans = rec.spans();
    let (msgs, conserved_msgs) = check_conservation(&spans);
    report.push_str(&render_layer_table(&spans));
    report.push_str(&format!(
        "spans: {}   messages: {}   fault events: {}\n",
        spans.len(),
        msgs,
        rec.instants().len()
    ));
    report.push_str(&format!(
        "per-message conservation: {}\n",
        if conserved_msgs { "exact" } else { "VIOLATED" }
    ));

    // Budget conservation is already part of the rendered report for
    // the RPC workloads; fold it into the single verdict.
    let conserved = conserved_msgs && !report.contains("VIOLATED");
    Some(ProfOutcome {
        name,
        recorder: rec,
        report,
        conserved,
    })
}

/// Drive a chaos-matrix cell with the recorder installed, then overlay
/// its fault log as instant events.
fn run_chaos_cell(rec: &Arc<Recorder>, workload: Workload) {
    let _g = rec.install();
    let plan = figure_chaos_plan();
    let (_outcome, events) = run_cell_events(workload, "simprof-chaos", &plan);
    for (at, what) in events {
        rec.instant(at, None, what);
    }
}

/// The one-sided workload under observation: a reader on node 0
/// fetching one page per round from node 1's read-enabled export. The
/// interesting property the profile audits is the span shape of a
/// fetch: requester-side issue + park, the responder's NIC serving the
/// read with its processor idle, and the reply deposits — all summing
/// exactly to the observed fetch latency. Returns the responder-engine
/// section (queue depth from the NIC's serving counters, plus the
/// queue-depth instants the NIC emitted) for the rendered report.
fn run_rmc_fetch(rec: &Arc<Recorder>) -> String {
    use shrimp_core::ExportOpts;
    use shrimp_mesh::NodeId;
    use shrimp_node::{CacheMode, PAGE_SIZE};

    let _g = rec.install();
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let names: shrimp_sim::SimChannel<shrimp_core::BufferName> = shrimp_sim::SimChannel::new();
    {
        let owner = system.endpoint(1, "prof-owner");
        let names = names.clone();
        kernel.spawn("prof-owner", move |ctx| {
            let buf = owner.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            let fill: Vec<u8> = (0..PAGE_SIZE).map(|i| (i % 241) as u8).collect();
            owner.proc_().write(ctx, buf, &fill).unwrap();
            let name = owner
                .export(
                    ctx,
                    buf,
                    PAGE_SIZE,
                    ExportOpts {
                        read: true,
                        ..Default::default()
                    },
                )
                .unwrap();
            names.send(&ctx.handle(), name);
        });
    }
    {
        let reader = system.endpoint(0, "prof-reader");
        kernel.spawn("prof-reader", move |ctx| {
            let name = names.recv(ctx);
            let src = reader.import(ctx, NodeId(1), name).unwrap();
            let dst = reader.proc_().alloc(PAGE_SIZE, CacheMode::WriteBack);
            for _ in 0..WARMUP + ROUNDS {
                reader.fetch(ctx, dst, &src, 0, PAGE_SIZE).unwrap();
            }
            let got = reader.proc_().peek(dst, PAGE_SIZE).unwrap();
            assert!(got.iter().enumerate().all(|(i, &b)| b == (i % 241) as u8));
        });
    }
    kernel
        .run_until_quiescent()
        .expect("rmc profile run failed");

    // Responder-engine section: the serving-queue shape on the owner
    // node. Depth instants come from the NIC itself, so a FetchStall or
    // brownout that backs requests up shows here and in the trace.
    let report = system.report();
    let owner = &report.nics[1];
    let depth_events = rec
        .instants()
        .iter()
        .filter(|i| i.label.starts_with("fetch_queue_depth="))
        .count();
    format!(
        "responder engine (node 1):\n  fetch requests served: {}   reply packets: {}   denials: {}\n  queue depth peak: {}   depth events: {depth_events}\n",
        owner.fetch_reqs_in, owner.fetch_replies_out, owner.fetch_denials, owner.fetch_queue_peak
    )
}

/// The Fig. 5 workload under observation: a null VRPC call with a
/// 4-byte INOUT argument over the automatic-update stream (the paper's
/// fastest compatible variant), optionally under a fault plan.
fn run_vrpc_null(rec: &Arc<Recorder>, plan: Option<&FaultPlan>) {
    let _g = rec.install();
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let log = plan.map(|p| system.apply_faults(p));
    let dir = RpcDirectory::new();
    {
        let vmmc = system.endpoint(1, "prof-server");
        let dir = Arc::clone(&dir);
        kernel.spawn("prof-server", move |ctx| {
            let mut server = VrpcServer::new(vmmc, PROG, VERS);
            server.register(
                1,
                Box::new(|_ctx, args, out| {
                    let Ok(data) = args.get_opaque() else {
                        return AcceptStat::GarbageArgs;
                    };
                    out.put_opaque(data);
                    AcceptStat::Success
                }),
            );
            let mut conn = server.accept(ctx, &dir).unwrap();
            server.serve(ctx, &mut conn).unwrap();
        });
    }
    {
        let vmmc = system.endpoint(0, "prof-client");
        let dir = Arc::clone(&dir);
        kernel.spawn("prof-client", move |ctx| {
            let mut client =
                VrpcClient::bind(vmmc, ctx, &dir, PROG, VERS, StreamVariant::AutomaticUpdate)
                    .unwrap();
            let arg = [0x7Eu8; 4];
            for _ in 0..WARMUP + ROUNDS {
                let r = client
                    .call(
                        ctx,
                        1,
                        |e| e.put_opaque(&arg),
                        |d| Ok(d.get_opaque()?.to_vec()),
                    )
                    .unwrap();
                assert_eq!(r.len(), 4);
            }
            client.close(ctx).unwrap();
        });
    }
    kernel
        .run_until_quiescent()
        .expect("fig5 profile run failed");
    if let Some(log) = log {
        for (at, what) in log.snapshot() {
            rec.instant(at, None, what);
        }
    }
}

/// The §5 workload under observation: the specialized RPC's null call
/// with a 4-byte INOUT argument, optionally under a fault plan.
fn run_srpc_null(rec: &Arc<Recorder>, plan: Option<&FaultPlan>) {
    let _g = rec.install();
    let idl = "interface Null { ping(inout data: opaque[4]); }";
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let log = plan.map(|p| system.apply_faults(p));
    let dir = SrpcDirectory::new();
    let iface = parse_interface(idl).expect("well-formed idl");
    let done: Arc<Mutex<bool>> = Arc::new(Mutex::new(false));
    {
        let vmmc = system.endpoint(1, "prof-server");
        let dir = Arc::clone(&dir);
        let iface = iface.clone();
        kernel.spawn("prof-server", move |ctx| {
            let mut server = SrpcServer::new(vmmc, &iface);
            server.register(
                "ping",
                Box::new(|ctx, ins, out| {
                    out.set(ctx, "data", &ins[0].clone()).unwrap();
                }),
            );
            let mut conn = server.accept(ctx, &dir, "null").unwrap();
            server.serve(ctx, &mut conn).unwrap();
        });
    }
    {
        let vmmc = system.endpoint(0, "prof-client");
        let dir = Arc::clone(&dir);
        let done = Arc::clone(&done);
        kernel.spawn("prof-client", move |ctx| {
            let mut client = SrpcClient::bind(vmmc, ctx, &dir, "null", &iface).unwrap();
            let arg = Val::Bytes(vec![0x55; 4]);
            for _ in 0..WARMUP + ROUNDS {
                client
                    .call(ctx, "ping", std::slice::from_ref(&arg))
                    .unwrap();
            }
            client.close(ctx).unwrap();
            *done.lock() = true;
        });
    }
    kernel
        .run_until_quiescent()
        .expect("srpc profile run failed");
    assert!(*done.lock(), "client never finished");
    if let Some(log) = log {
        for (at, what) in log.snapshot() {
            rec.instant(at, None, what);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_budget_sums_exactly_and_matches_paper_shape() {
        let out = profile("fig5", false).unwrap();
        assert!(out.conserved, "report:\n{}", out.report);
        let budget = rpc_budget(&out.recorder.spans(), &FIG5_PHASES);
        assert!(budget.is_conserved());
        assert_eq!(budget.calls as u32, WARMUP + ROUNDS);
        // Paper Fig. 5 shape for a null call: every component nonzero,
        // round trip ~29 us, prep the largest client-side slice.
        let per_call = |ps: u64| ps as f64 / 1e6 / budget.calls as f64;
        let rtt = per_call(budget.end_to_end_ps);
        assert!((25.0..35.0).contains(&rtt), "null RTT {rtt:.1} us");
        for (label, ps) in &budget.rows {
            assert!(*ps > 0, "{label} must be nonzero");
        }
        assert!(per_call(budget.rows[0].1) > per_call(budget.rows[3].1));
    }

    #[test]
    fn srpc_decomposition_conserves() {
        let out = profile("srpc", false).unwrap();
        assert!(out.conserved, "report:\n{}", out.report);
        let budget = rpc_budget(&out.recorder.spans(), &SRPC_PHASES);
        assert!(budget.is_conserved());
        assert!(budget.calls > 0);
    }

    #[test]
    fn rmc_fetch_profile_traces_and_conserves() {
        let out = profile("rmc", false).unwrap();
        let spans = out.recorder.spans();
        let (msgs, ok) = check_conservation(&spans);
        assert!(msgs > 0, "fetches must appear as traced messages");
        assert!(ok, "fetch spans violated conservation");
        assert!(out.conserved, "report:\n{}", out.report);
        // The responder's CPU never runs: no server-side User spans.
        assert!(
            spans
                .iter()
                .all(|s| s.layer != Layer::User || !s.name.contains("dispatch")),
            "a one-sided fetch must not dispatch server code"
        );
    }

    #[test]
    fn per_message_conservation_holds_across_workloads() {
        for name in ["fig3", "fig5", "fig7", "rmc"] {
            let out = profile(name, false).unwrap();
            let spans = out.recorder.spans();
            let (msgs, ok) = check_conservation(&spans);
            assert!(msgs > 0, "{name}: no traced messages");
            assert!(ok, "{name}: conservation violated");
            assert!(out.conserved, "{name} report:\n{}", out.report);
        }
    }

    #[test]
    fn chaos_profile_overlays_fault_events() {
        let out = profile("fig5", true).unwrap();
        assert!(
            !out.recorder.instants().is_empty(),
            "chaos run must record fault instants"
        );
        let json = out.trace_json();
        assert!(json.contains("\"ph\":\"i\""));
    }
}
