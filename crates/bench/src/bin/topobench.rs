//! The topology-zoo collective study. See `shrimp_bench::topobench`
//! for the experiment definition.
//!
//! Usage:
//!   `cargo run --release -p shrimp-bench --bin topobench [-- FLAGS]`
//!
//! * default: run the full zoo (mesh/torus/fat-tree/dragonfly at 4, 16,
//!   and 64 nodes, software vs in-network hardware) plus the
//!   adaptive-routing ablation, print the curve and the
//!   `BENCH_topo.json` content;
//! * `--smoke`: run only the 4- and 16-node sizes (no JSON — the
//!   committed JSON derives from the full run);
//! * `--curve`: print only the `results/topo_curve.txt` content;
//! * `--json`: print only the `BENCH_topo.json` content;
//! * `--write-curve PATH` / `--write-json PATH`: write the artifacts
//!   from one run (what `scripts/regen_results.sh` uses);
//! * `--check BENCH_topo.json`: digest gate — compares bit-for-bit
//!   against the committed file: `smoke_digest` under `--smoke` (CI's
//!   topo-smoke job), `topo_digest` otherwise.

use shrimp_bench::topobench::{
    adaptive_ablation, committed_digest, render_curve, render_json, run_zoo, topo_digest,
};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");

    let points = run_zoo(smoke);
    let ablation = adaptive_ablation(4, 4, 8);
    let json = if smoke {
        None
    } else {
        let smoke_points = run_zoo(true);
        let smoke_digest = topo_digest(&smoke_points, &ablation);
        Some(render_json(&points, &ablation, smoke_digest))
    };
    let curve = render_curve(&points, &ablation);

    if let Some(path) = arg_value(&args, "--write-curve") {
        std::fs::write(&path, &curve).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    }
    if let Some(path) = arg_value(&args, "--write-json") {
        let json = json
            .as_deref()
            .expect("--write-json requires the full zoo (drop --smoke)");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    }

    let curve_only = args.iter().any(|a| a == "--curve");
    let json_only = args.iter().any(|a| a == "--json");
    let wrote = args
        .iter()
        .any(|a| a == "--write-curve" || a == "--write-json");
    if curve_only {
        print!("{curve}");
    } else if json_only {
        print!(
            "{}",
            json.as_deref()
                .expect("--json requires the full zoo (drop --smoke)")
        );
    } else if !wrote {
        print!("{curve}");
        if let Some(json) = &json {
            println!();
            print!("{json}");
        }
    }

    if let Some(path) = arg_value(&args, "--check") {
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let field = if smoke { "smoke_digest" } else { "topo_digest" };
        let want = committed_digest(&committed, field);
        let got = topo_digest(&points, &ablation);
        let ok = want == Some(got);
        eprintln!(
            "check: {field} {:016x} vs committed {} — {}",
            got,
            want.map_or("<missing>".to_string(), |d| format!("{d:016x}")),
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            eprintln!("check: topology zoo virtual results diverged from {path}");
            std::process::exit(1);
        }
    }
}
