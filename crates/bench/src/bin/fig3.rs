//! Regenerates **Figure 3**: latency and bandwidth delivered by the
//! SHRIMP VMMC layer, for AU-1copy / AU-2copy / DU-0copy / DU-1copy.
//!
//! Usage: `cargo run -p shrimp-bench --bin fig3 [-- --uncached]`
//!
//! `--uncached` additionally reports the caching-disabled AU case quoted
//! in §3.4 (3.7 µs vs 4.75 µs for one word).

use shrimp_bench::pingpong::{vmmc_pingpong, Strategy};
use shrimp_bench::{paper_sizes, render_figure, Series, LATENCY_CUTOFF};
use shrimp_node::CostModel;

fn main() {
    let uncached = std::env::args().any(|a| a == "--uncached");
    let sizes = paper_sizes();

    let mut all = Vec::new();
    for strategy in Strategy::all() {
        let mut s = Series::new(strategy.label());
        for &size in &sizes {
            s.points.push(vmmc_pingpong(
                strategy,
                size,
                false,
                CostModel::shrimp_prototype(),
            ));
        }
        all.push(s);
    }
    println!(
        "{}",
        render_figure(
            "Figure 3: VMMC base-layer latency and bandwidth",
            &all,
            LATENCY_CUTOFF
        )
    );

    let word_au = all[0].latency_at(4).unwrap();
    let word_du = all[2].latency_at(4).unwrap();
    println!(
        "anchors: AU 1-word {word_au:.2} us (paper 4.75), DU 1-word {word_du:.2} us (paper 7.6)"
    );
    println!(
        "         DU-0copy peak {:.1} MB/s (paper ~23)",
        all[2].peak_bandwidth()
    );

    if uncached {
        let p = vmmc_pingpong(Strategy::Au1Copy, 4, true, CostModel::shrimp_prototype());
        println!(
            "         AU 1-word, caching disabled: {:.2} us (paper 3.7)",
            p.latency_us
        );
    }
}
