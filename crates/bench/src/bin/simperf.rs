//! Wall-clock performance harness for the simulation engine (host
//! seconds, scheduled items/sec, heap allocations) over the repo's own
//! figure workloads. See `shrimp_bench::simperf` for the workload
//! definitions.
//!
//! Usage:
//!   `cargo run --release -p shrimp-bench --bin simperf [-- --only NAME]
//!        [-- --json] [-- --check BENCH_simperf.json [--threshold X]]`
//!
//! * default: run all workloads, print a human-readable table plus the
//!   JSON fragment to splice into `BENCH_simperf.json`;
//! * `--only NAME`: run a single workload (`fig3`, `fig7`, `coll4x4`,
//!   `coll8x8`);
//! * `--check FILE`: CI regression gate — after running, compare each
//!   workload's wall seconds against the committed baseline's `after`
//!   section and exit non-zero if any exceeds `threshold ×` baseline
//!   (default 1.5; CI machines are noisy, virtual results are exact,
//!   so only gross regressions should trip this);
//! * `--obs-overhead NAME [--obs-threshold PCT]`: observability-cost
//!   gate — run NAME with the `shrimp-obs` recorder disabled and
//!   enabled, demand identical virtual digests, and fail when the
//!   enabled run costs more than PCT percent extra wall clock
//!   (default 5).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use shrimp_bench::simperf::{baseline_wall_s, render_json, run_all};

/// Counts every allocation the workloads make. Wraps the system
/// allocator; the counters are what `--json` reports as `allocs` /
/// `alloc_bytes`.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; only adds relaxed counter
// increments, which allocate nothing.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn read_counters() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The observability-cost gate: run one workload alternately with the
/// recorder disabled and enabled (min wall seconds of `REPS` runs
/// each, to ride out CI noise), demand bit-identical virtual digests,
/// and fail when the enabled run costs more than `pct_limit` percent
/// extra wall clock.
fn run_obs_overhead(name: &str, pct_limit: f64) -> ! {
    const REPS: usize = 3;
    let (mut off, mut on) = (f64::INFINITY, f64::INFINITY);
    let (mut off_digest, mut on_digest) = (0u64, 0u64);
    let mut spans = 0usize;
    for _ in 0..REPS {
        let Some(r) = run_all(Some(name), read_counters).into_iter().next() else {
            eprintln!("unknown workload {name}; expected fig3|fig7|coll4x4|coll8x8");
            std::process::exit(2);
        };
        off = off.min(r.wall_s);
        off_digest = r.virt_digest;

        let rec = shrimp_obs::Recorder::new();
        let guard = rec.install();
        let r = run_all(Some(name), read_counters)
            .into_iter()
            .next()
            .unwrap();
        drop(guard);
        on = on.min(r.wall_s);
        on_digest = r.virt_digest;
        spans = rec.len();
    }
    assert_eq!(
        off_digest, on_digest,
        "virt_digest changed with the recorder installed"
    );
    assert!(spans > 0, "enabled runs must actually record spans");
    let pct = (on / off.max(1e-9) - 1.0) * 100.0;
    println!(
        "obs-overhead {name}: disabled {off:.3}s, enabled {on:.3}s ({pct:+.1}%, \
         {spans} spans, limit +{pct_limit:.1}%)"
    );
    if pct > pct_limit {
        eprintln!("obs-overhead gate FAILED: enabled run costs {pct:.1}% > {pct_limit:.1}%");
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(name) = arg_value(&args, "--obs-overhead") {
        let pct_limit: f64 = arg_value(&args, "--obs-threshold")
            .and_then(|v| v.parse().ok())
            .unwrap_or(5.0);
        run_obs_overhead(&name, pct_limit);
    }
    let only = arg_value(&args, "--only");
    let json_only = args.iter().any(|a| a == "--json");
    let check = arg_value(&args, "--check");
    let threshold: f64 = arg_value(&args, "--threshold")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.5);

    let results = run_all(only.as_deref(), read_counters);
    if results.is_empty() {
        eprintln!("unknown workload {only:?}; expected fig3|fig7|coll4x4|coll8x8");
        std::process::exit(2);
    }

    if !json_only {
        println!(
            "{:<9} {:>9} {:>12} {:>14} {:>12} {:>12} {:>14}  virt digest",
            "workload", "wall s", "items", "items/sec", "fast-resume", "allocs", "alloc bytes",
        );
        for r in &results {
            println!(
                "{:<9} {:>9.3} {:>12} {:>14.0} {:>12} {:>12} {:>14}  {:016x}",
                r.name,
                r.wall_s,
                r.metrics.items(),
                r.items_per_sec(),
                r.metrics.fast_resumes,
                r.allocs,
                r.alloc_bytes,
                r.virt_digest
            );
        }
        println!();
    }
    println!("{}", render_json(&results));

    if let Some(path) = check {
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let mut failed = false;
        for r in &results {
            match baseline_wall_s(&committed, "after", r.name) {
                None => {
                    eprintln!("check: no committed baseline for {}, skipping", r.name);
                }
                Some(base) => {
                    let ratio = r.wall_s / base.max(1e-9);
                    let verdict = if ratio > threshold { "FAIL" } else { "ok" };
                    eprintln!(
                        "check: {} wall {:.3}s vs baseline {:.3}s ({:.2}x, limit {:.2}x) {}",
                        r.name, r.wall_s, base, ratio, threshold, verdict
                    );
                    failed |= ratio > threshold;
                }
            }
        }
        if failed {
            eprintln!("check: wall-clock regression beyond {threshold}x baseline");
            std::process::exit(1);
        }
    }
}
