//! The one-sided remote-memory benchmark binary: raw fetch latency
//! and bandwidth, the zero-copy svc `get` against its SRPC baseline,
//! and the disaggregated-memory pager. See `shrimp_bench::rmcbench`
//! for the experiment definitions.
//!
//! Usage:
//!   `cargo run --release -p shrimp-bench --bin rmcbench [-- FLAGS]`
//!
//! * default: run the committed configuration, print the human-
//!   readable curve and the `BENCH_rmc.json` content;
//! * `--smoke`: run the CI-sized configuration instead;
//! * `--curve`: print only the `results/rmc_curve.txt` content;
//! * `--json`: print only the `BENCH_rmc.json` content;
//! * `--write-curve PATH` / `--write-json PATH`: write the artifacts
//!   from one run (what `scripts/regen_results.sh` uses);
//! * `--check BENCH_rmc.json`: CI gate — re-run the cells and exit
//!   non-zero unless the digest matches the committed file
//!   bit-for-bit.

use shrimp_bench::rmcbench::{
    committed_digest, render_curve, render_json, rmc_digest, run_all, RmcConfig,
};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = if args.iter().any(|a| a == "--smoke") {
        RmcConfig::smoke()
    } else {
        RmcConfig::paper()
    };

    let outcome = run_all(&cfg);
    let curve_txt = render_curve(&cfg, &outcome);
    let json = render_json(&cfg, &outcome);

    if let Some(path) = arg_value(&args, "--write-curve") {
        std::fs::write(&path, &curve_txt).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    }
    if let Some(path) = arg_value(&args, "--write-json") {
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    }

    let curve_only = args.iter().any(|a| a == "--curve");
    let json_only = args.iter().any(|a| a == "--json");
    let wrote = args
        .iter()
        .any(|a| a == "--write-curve" || a == "--write-json");
    if curve_only {
        print!("{curve_txt}");
    } else if json_only {
        print!("{json}");
    } else if !wrote {
        print!("{curve_txt}");
        println!();
        print!("{json}");
    }

    if let Some(path) = arg_value(&args, "--check") {
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let want = committed_digest(&committed, "rmc_digest");
        let got = rmc_digest(&outcome);
        let ok = want == Some(got);
        eprintln!(
            "check: rmc digest {:016x} vs committed {} — {}",
            got,
            want.map_or("<missing>".to_string(), |d| format!("{d:016x}")),
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            eprintln!("check: rmc virtual results diverged from {path}");
            std::process::exit(1);
        }
    }
}
