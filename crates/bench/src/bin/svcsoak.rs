//! The chaos-soaked SLO soak binary for `shrimp-svc`. See
//! `shrimp_bench::svcsoak` for the experiment definition.
//!
//! Usage:
//!   `cargo run --release -p shrimp-bench --bin svcsoak [-- FLAGS]`
//!
//! * default: run the committed 4×4 soak (plus the smoke soak, whose
//!   digest is part of the JSON), print the human-readable report and
//!   the `BENCH_svcsoak.json` content;
//! * `--smoke`: run only the small 2×2 configuration (no JSON — the
//!   committed JSON derives from the full run);
//! * `--report`: print only the `results/svc_soak.txt` content;
//! * `--json`: print only the `BENCH_svcsoak.json` content;
//! * `--write-report PATH` / `--write-json PATH`: write the artifacts
//!   from one run (what `scripts/regen_results.sh` uses);
//! * `--check BENCH_svcsoak.json`: digest gate — the SLO and
//!   zero-lost-acks assertions fire inside the run itself, then the
//!   digest is compared bit-for-bit against the committed file:
//!   `smoke_digest` under `--smoke` (CI's svc-soak job), `soak_digest`
//!   otherwise.

use shrimp_bench::svcsoak::{
    committed_digest, render_json, render_report, run_soak, soak_digest, SoakConfig,
};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");

    let (cfg, outcome, json) = if smoke {
        let cfg = SoakConfig::smoke();
        let outcome = run_soak(&cfg);
        (cfg, outcome, None)
    } else {
        let cfg = SoakConfig::paper_4x4();
        let outcome = run_soak(&cfg);
        let smoke_outcome = run_soak(&SoakConfig::smoke());
        let json = render_json(&cfg, &outcome, soak_digest(&smoke_outcome));
        (cfg, outcome, Some(json))
    };
    let report = render_report(&cfg, &outcome);

    if let Some(path) = arg_value(&args, "--write-report") {
        std::fs::write(&path, &report).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    }
    if let Some(path) = arg_value(&args, "--write-json") {
        let json = json
            .as_deref()
            .expect("--write-json requires the full soak (drop --smoke)");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    }

    let report_only = args.iter().any(|a| a == "--report");
    let json_only = args.iter().any(|a| a == "--json");
    let wrote = args
        .iter()
        .any(|a| a == "--write-report" || a == "--write-json");
    if report_only {
        print!("{report}");
    } else if json_only {
        print!(
            "{}",
            json.as_deref()
                .expect("--json requires the full soak (drop --smoke)")
        );
    } else if !wrote {
        print!("{report}");
        if let Some(json) = &json {
            println!();
            print!("{json}");
        }
    }

    if let Some(path) = arg_value(&args, "--check") {
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let field = if smoke { "smoke_digest" } else { "soak_digest" };
        let want = committed_digest(&committed, field);
        let got = soak_digest(&outcome);
        let ok = want == Some(got);
        eprintln!(
            "check: {field} {:016x} vs committed {} — {}",
            got,
            want.map_or("<missing>".to_string(), |d| format!("{d:016x}")),
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            eprintln!("check: svc soak virtual results diverged from {path}");
            std::process::exit(1);
        }
    }
}
