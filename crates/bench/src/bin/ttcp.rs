//! Regenerates the **§4.3 ttcp measurements**: one-way socket
//! throughput, comparing the public-domain ttcp benchmark (with its own
//! per-write overhead) against the library's own microbenchmark.
//!
//! Usage: `cargo run -p shrimp-bench --bin ttcp`

use shrimp_bench::socket_bench::{one_way_pump, ttcp_write_overhead};
use shrimp_node::CostModel;
use shrimp_sim::SimDur;
use shrimp_sockets::SocketVariant;

fn main() {
    println!("== ttcp one-way throughput (paper §4.3) ==\n");
    println!(
        "{:<14}{:>16}{:>20}",
        "msg bytes", "ttcp MB/s", "microbench MB/s"
    );
    for &size in &[70usize, 512, 1024, 4096, 7168, 8192] {
        let count = (200_000 / size).clamp(10, 300);
        let ttcp = one_way_pump(
            SocketVariant::Du1Copy,
            size,
            count,
            ttcp_write_overhead(size),
            CostModel::shrimp_prototype(),
        );
        let lib = one_way_pump(
            SocketVariant::Du1Copy,
            size,
            count,
            SimDur::ZERO,
            CostModel::shrimp_prototype(),
        );
        println!("{size:<14}{ttcp:>16.2}{lib:>20.2}");
    }
    println!("\npaper anchors: ttcp 8.6 MB/s and microbenchmark 9.8 MB/s at 7 KB;");
    println!("               ttcp 1.3 MB/s at 70 B (already above Ethernet's peak).");
}
