//! Regenerates **Figure 7**: stream-socket latency and bandwidth for
//! AU-2copy, DU-1copy, and DU-2copy.
//!
//! Usage: `cargo run -p shrimp-bench --bin fig7`

use shrimp_bench::pingpong::{vmmc_pingpong, Strategy};
use shrimp_bench::socket_bench::{socket_pingpong, socket_variants, variant_label};
use shrimp_bench::{paper_sizes, render_figure, Series, LATENCY_CUTOFF};
use shrimp_node::CostModel;

fn main() {
    let sizes = paper_sizes();
    let mut all = Vec::new();
    for variant in socket_variants() {
        let mut s = Series::new(variant_label(variant));
        for &size in &sizes {
            s.points.push(socket_pingpong(
                variant,
                size,
                CostModel::shrimp_prototype(),
            ));
        }
        all.push(s);
    }
    println!(
        "{}",
        render_figure(
            "Figure 7: socket latency and bandwidth",
            &all,
            LATENCY_CUTOFF
        )
    );

    let hw = vmmc_pingpong(Strategy::Au2Copy, 16, false, CostModel::shrimp_prototype());
    println!(
        "anchors: small-message overhead over hardware {:.1} us (paper: ~13, split evenly)",
        all[0].latency_at(16).unwrap() - hw.latency_us
    );
    let hw1 = vmmc_pingpong(
        Strategy::Du1Copy,
        10240,
        false,
        CostModel::shrimp_prototype(),
    );
    println!(
        "         10 KB DU-1copy {:.1} MB/s vs raw one-copy limit {:.1} MB/s",
        all[1].bandwidth_at(10240).unwrap(),
        hw1.bandwidth_mbs
    );
}
