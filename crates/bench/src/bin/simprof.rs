//! Virtual-time profiler: rerun a figure workload with the
//! `shrimp-obs` recorder installed, print the per-layer decomposition
//! (Fig. 5 budget for `fig5`, §5 decomposition for `srpc`), and
//! optionally export a Perfetto-loadable trace.
//!
//! Usage:
//!   `cargo run -p shrimp-bench --bin simprof -- <workload>
//!        [--chaos] [--trace FILE.json]`
//!
//! * `<workload>`: `fig3`, `fig5`, `fig7`, `srpc`, `coll4x4`, or
//!   `rmc` (one-sided remote fetch);
//! * `--chaos`: drive the run through the fault-injection engine and
//!   overlay the fault log on the trace as instant events;
//! * `--trace FILE.json`: write the run as Chrome trace-event JSON
//!   (open in <https://ui.perfetto.dev> or `chrome://tracing`).
//!
//! Exits non-zero if any conservation check fails — segments of a
//! per-message breakdown, or rows of an RPC budget, not summing
//! exactly to end-to-end virtual time.

use shrimp_bench::simprof::{profile, WORKLOADS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workload: Option<String> = None;
    let mut chaos = false;
    let mut trace: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--chaos" => chaos = true,
            "--trace" => {
                let Some(path) = it.next() else {
                    eprintln!("--trace needs a file path");
                    std::process::exit(2);
                };
                trace = Some(path);
            }
            name if !name.starts_with('-') && workload.is_none() => {
                workload = Some(name.to_string());
            }
            other => {
                eprintln!("unknown argument: {other}");
                usage_and_exit();
            }
        }
    }
    let Some(workload) = workload else {
        usage_and_exit();
    };

    let Some(out) = profile(&workload, chaos) else {
        eprintln!("unknown workload: {workload}");
        usage_and_exit();
    };

    println!(
        "simprof {}{}",
        out.name,
        if chaos { " (chaos)" } else { "" }
    );
    print!("{}", out.report);

    if let Some(path) = trace {
        let json = out.trace_json();
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("trace: {path} ({} bytes)", json.len());
    }

    if !out.conserved {
        eprintln!("conservation check FAILED");
        std::process::exit(1);
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "usage: simprof <{}> [--chaos] [--trace FILE.json]",
        WORKLOADS.join("|")
    );
    std::process::exit(2);
}
