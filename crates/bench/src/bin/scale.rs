//! Scaling studies on the planned 16-node expansion (paper §8).
//!
//! Usage: `cargo run -p shrimp-bench --bin scale`

use shrimp_bench::scale::{barrier_latency, bcast_completion, ring_aggregate_bandwidth};

fn main() {
    println!("== scaling: 4-node prototype vs planned 16-node machine ==\n");
    println!("{:<26}{:>12}{:>12}", "metric", "2x2 (4n)", "4x4 (16n)");
    println!(
        "{:<26}{:>12.1}{:>12.1}",
        "gsync barrier (us)",
        barrier_latency(2, 2, 4),
        barrier_latency(4, 4, 4)
    );
    println!(
        "{:<26}{:>12.1}{:>12.1}",
        "tree bcast 2KB (us)",
        bcast_completion(2, 2, 2048, true),
        bcast_completion(4, 4, 2048, true)
    );
    println!(
        "{:<26}{:>12.1}{:>12.1}",
        "naive bcast 2KB (us)",
        bcast_completion(2, 2, 2048, false),
        bcast_completion(4, 4, 2048, false)
    );
    println!(
        "{:<26}{:>12.0}{:>12.0}",
        "ring aggregate (MB/s)",
        ring_aggregate_bandwidth(2, 2, 10240),
        ring_aggregate_bandwidth(4, 4, 10240)
    );
}
