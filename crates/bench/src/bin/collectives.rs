//! Collective-communication scaling study on the `shrimp-coll` layer:
//! barrier latency and ring-allreduce latency/bandwidth at 2x2, 4x4,
//! and 8x8 meshes, plus the allreduce algorithm-crossover sweep at 4x4
//! (ring reduce-scatter+allgather vs recursive doubling, with the size
//! selector's pick alongside).
//!
//! Usage: `cargo run -p shrimp-bench --bin collectives [-- --seed N] [-- --smoke]`
//!
//! `--smoke` drops the 8x8 mesh and trims the sweeps (CI). The report
//! is derived entirely from virtual time: reruns with the same seed
//! are byte-identical, which the binary itself re-checks.

use shrimp_bench::collectives::render_report;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(42);

    let report = render_report(seed, smoke);
    print!("{report}");

    // The replay guarantee: the same seed must reproduce the same
    // report byte-for-byte.
    let replayed = render_report(seed, smoke);
    assert_eq!(report, replayed, "same-seed replay must be bit-identical");
    println!("replay check passed: report is bit-identical for seed {seed}");
}
