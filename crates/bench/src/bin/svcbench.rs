//! The KV serving benchmark binary: throughput-vs-offered-load curve
//! plus failover measurement for `shrimp-svc`. See
//! `shrimp_bench::svcbench` for the experiment definitions.
//!
//! Usage:
//!   `cargo run --release -p shrimp-bench --bin svcbench [-- FLAGS]`
//!
//! * default: run the committed 4×4 sweep, print the human-readable
//!   curve and the `BENCH_svc.json` content;
//! * `--smoke`: run the small 2×2 configuration instead;
//! * `--curve`: print only the `results/svc_curve.txt` content;
//! * `--json`: print only the `BENCH_svc.json` content;
//! * `--write-curve PATH` / `--write-json PATH`: write the artifacts
//!   from one run (what `scripts/regen_results.sh` uses);
//! * `--check BENCH_svc.json`: CI gate — re-run the sweep and exit
//!   non-zero unless the curve and failover digests match the
//!   committed file bit-for-bit.

use shrimp_bench::svcbench::{
    committed_digest, curve_digest, failover_digest, render_curve, render_json, run_sweep,
    SweepConfig,
};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = if args.iter().any(|a| a == "--smoke") {
        SweepConfig::smoke()
    } else {
        SweepConfig::paper_4x4()
    };

    let (curve, failover) = run_sweep(&cfg);
    let curve_txt = render_curve(&cfg, &curve, &failover);
    let json = render_json(&cfg, &curve, &failover);

    if let Some(path) = arg_value(&args, "--write-curve") {
        std::fs::write(&path, &curve_txt).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    }
    if let Some(path) = arg_value(&args, "--write-json") {
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    }

    let curve_only = args.iter().any(|a| a == "--curve");
    let json_only = args.iter().any(|a| a == "--json");
    let wrote = args
        .iter()
        .any(|a| a == "--write-curve" || a == "--write-json");
    if curve_only {
        print!("{curve_txt}");
    } else if json_only {
        print!("{json}");
    } else if !wrote {
        print!("{curve_txt}");
        println!();
        print!("{json}");
    }

    if let Some(path) = arg_value(&args, "--check") {
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let want_curve = committed_digest(&committed, "curve_digest");
        let want_failover = committed_digest(&committed, "failover_digest");
        let got_curve = curve_digest(&curve);
        let got_failover = failover_digest(&failover);
        let curve_ok = want_curve == Some(got_curve);
        let failover_ok = want_failover == Some(got_failover);
        eprintln!(
            "check: curve digest {:016x} vs committed {} — {}",
            got_curve,
            want_curve.map_or("<missing>".to_string(), |d| format!("{d:016x}")),
            if curve_ok { "ok" } else { "FAIL" }
        );
        eprintln!(
            "check: failover digest {:016x} vs committed {} — {}",
            got_failover,
            want_failover.map_or("<missing>".to_string(), |d| format!("{d:016x}")),
            if failover_ok { "ok" } else { "FAIL" }
        );
        if !(curve_ok && failover_ok) {
            eprintln!("check: svc virtual results diverged from {path}");
            std::process::exit(1);
        }
    }
}
