//! Regenerates **Figure 8**: round-trip time for a null RPC with a
//! single INOUT argument of varying size — compatible (VRPC) vs
//! non-compatible (SHRIMP RPC), fastest (one-copy automatic update)
//! version of each.
//!
//! Usage: `cargo run -p shrimp-bench --bin fig8 [-- --breakdown]`
//!
//! `--breakdown` also reports the specialized system's software-only
//! overhead (paper §5: under 1 µs).

use shrimp_bench::rpc_compare::{
    compatible_roundtrip, specialized_roundtrip, specialized_software_overhead,
};
use shrimp_node::CostModel;

fn main() {
    let breakdown = std::env::args().any(|a| a == "--breakdown");
    let sizes: Vec<usize> = vec![4, 50, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000];

    println!("== Figure 8: null RPC round-trip time, single INOUT argument ==\n");
    println!(
        "{:<12}{:>18}{:>18}{:>10}",
        "bytes", "compatible us", "non-compatible us", "ratio"
    );
    let mut first = None;
    let mut last = None;
    for &size in &sizes {
        let c = compatible_roundtrip(size, CostModel::shrimp_prototype());
        let s = specialized_roundtrip(size, CostModel::shrimp_prototype());
        let ratio = c.latency_us / s.latency_us;
        println!(
            "{:<12}{:>18.2}{:>18.2}{:>10.2}",
            size, c.latency_us, s.latency_us, ratio
        );
        if first.is_none() {
            first = Some((c.latency_us, s.latency_us));
        }
        last = Some(ratio);
    }
    let (c0, s0) = first.expect("at least one size");
    println!(
        "\nanchors: null call {s0:.1} us non-compatible vs {c0:.1} us compatible \
         (paper: 9.5 vs 29, more than a factor of three)"
    );
    println!(
        "         ratio at 1000 B: {:.2} (paper: roughly a factor of two)",
        last.expect("at least one size")
    );
    if breakdown {
        println!(
            "         specialized software-only round trip: {:.2} us \
             (paper: software overhead under 1 us per call)",
            specialized_software_overhead()
        );
    }
}
