//! The chaos harness: reruns the Figure 3/4/7 workloads plus the
//! shrimp-coll collective rounds under a matrix of deterministic fault
//! plans and asserts the recovery contract — no corruption, per-pair
//! ordering, bounded latency degradation, clean shutdown, and
//! bit-identical reports for identical seeds.
//!
//! Usage: `cargo run -p shrimp-bench --bin chaos [-- --seeds N] [-- --smoke]`
//!
//! `--seeds N` runs N generated light+heavy plans per workload (default
//! 2); `--smoke` runs the single-seed quick matrix used by CI.

use shrimp_bench::chaos::{default_matrix, render_report, run_matrix, Workload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let nseeds = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(if smoke { 1 } else { 2 });
    let seeds: Vec<u64> = (1..=nseeds).collect();

    // Two nodes carry the traffic; plans target both.
    let matrix = default_matrix(2, &seeds);
    println!(
        "chaos matrix: {} plans x {} workloads",
        matrix.len(),
        Workload::all().len()
    );
    for (name, plan) in &matrix {
        println!("  plan {name}: {} events", plan.events.len());
    }

    let mut all = Vec::new();
    let mut vmmc_report = String::new();
    for workload in Workload::all() {
        println!(
            "running {} under {} plans...",
            workload.label(),
            matrix.len()
        );
        let outcomes = run_matrix(workload, &matrix);
        if workload == Workload::Vmmc {
            vmmc_report = render_report(&outcomes);
        }
        all.extend(outcomes);
    }
    let report = render_report(&all);

    // The replay guarantee: the same matrix must reproduce the same
    // report byte-for-byte.
    let replayed = render_report(&run_matrix(Workload::Vmmc, &matrix));
    assert_eq!(
        vmmc_report, replayed,
        "replaying the vmmc matrix must be bit-identical"
    );

    println!("{report}");
    println!("all recovery contracts held: no corruption, in-order delivery,");
    println!("bounded degradation, clean shutdown, deterministic replay.");
}
