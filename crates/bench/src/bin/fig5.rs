//! Regenerates **Figure 5**: VRPC round-trip latency and bandwidth as a
//! function of argument/result size, for DU-1copy and AU-1copy.
//!
//! Usage: `cargo run -p shrimp-bench --bin fig5`

use shrimp_bench::vrpc_bench::{vrpc_roundtrip, VrpcVariant};
use shrimp_bench::{paper_sizes, render_figure, Series, LATENCY_CUTOFF};
use shrimp_node::CostModel;

fn main() {
    let sizes = paper_sizes();
    let mut all = Vec::new();
    for variant in VrpcVariant::all() {
        let mut s = Series::new(variant.label());
        for &size in &sizes {
            s.points
                .push(vrpc_roundtrip(variant, size, CostModel::shrimp_prototype()));
        }
        all.push(s);
    }
    println!(
        "{}",
        render_figure(
            "Figure 5: VRPC round-trip latency and bandwidth (single INOUT opaque argument)",
            &all,
            LATENCY_CUTOFF
        )
    );
    println!(
        "anchors: null RPC round trip {:.1} us AU / {:.1} us DU (paper: ~29 us)",
        all[1].latency_at(4).unwrap(),
        all[0].latency_at(4).unwrap()
    );
}
