//! Regenerates **Figure 4**: NX latency and bandwidth for the five
//! protocol variants.
//!
//! Usage: `cargo run -p shrimp-bench --bin fig4`

use shrimp_bench::nx_pingpong::{nx_pingpong, NxVariant};
use shrimp_bench::pingpong::{vmmc_pingpong, Strategy};
use shrimp_bench::{paper_sizes, render_figure, Series, LATENCY_CUTOFF};
use shrimp_node::CostModel;

fn main() {
    let sizes = paper_sizes();
    let mut all = Vec::new();
    for variant in NxVariant::all() {
        let mut s = Series::new(variant.label());
        for &size in &sizes {
            s.points
                .push(nx_pingpong(variant, size, CostModel::shrimp_prototype()));
        }
        all.push(s);
    }
    println!(
        "{}",
        render_figure("Figure 4: NX latency and bandwidth", &all, LATENCY_CUTOFF)
    );

    let hw = vmmc_pingpong(Strategy::Au1Copy, 8, false, CostModel::shrimp_prototype());
    let nx = all[0].latency_at(8).unwrap();
    println!(
        "anchors: AU small-message overhead over hardware {:.2} us (paper: just over 6)",
        nx - hw.latency_us
    );
    let hw_bw = vmmc_pingpong(
        Strategy::Du0Copy,
        10240,
        false,
        CostModel::shrimp_prototype(),
    );
    println!(
        "         zero-copy 10 KB bandwidth {:.1} MB/s vs raw hardware {:.1} MB/s",
        all[2].bandwidth_at(10240).unwrap(),
        hw_bw.bandwidth_mbs
    );
}
