//! Ablation studies of the design choices DESIGN.md §5 calls out.
//!
//! Usage: `cargo run -p shrimp-bench --bin ablations`

use shrimp_bench::ablations::*;

fn main() {
    println!("== A1: combine-timeout sweep (1-word AU latency) ==");
    for (timeout_us, latency_us) in combine_timeout_sweep() {
        println!("  hold window {timeout_us:>5.2} us  ->  one-way {latency_us:>6.2} us");
    }

    println!("\n== A2: write combining on/off (64 B as 16 word stores) ==");
    for (combine, latency_us, packets, rx_bus_us) in combining_on_off() {
        println!(
            "  combining {:<5}  latency {latency_us:>6.2} us  packets {packets:>3}  rx EISA busy {rx_bus_us:>5.2} us",
            combine
        );
    }

    println!("\n== A3: deliberate-update word-alignment restriction (NX DU-1copy, 1 KB) ==");
    let (aligned, unaligned) = alignment_fallback();
    println!("  aligned buffer   {aligned:>7.2} us one-way");
    println!("  unaligned buffer {unaligned:>7.2} us one-way (marshal-copy fallback, §6)");

    println!("\n== A4: optimistic safe copy (16 KB csend, receiver 2 ms late) ==");
    let ((ob, ot), (bb, bt)) = optimistic_copy_on_off(16 * 1024);
    println!("  optimistic:     sender blocked {ob:>8.1} us, delivery complete {ot:>8.1} us");
    println!("  no safe copy:   sender blocked {bb:>8.1} us, delivery complete {bt:>8.1} us");

    println!("\n== A5: an interrupt per message vs polling (16 B transfers) ==");
    let (polling, interrupts) = interrupt_per_message();
    println!("  polling protocol:        {polling:>7.2} us one-way");
    println!(
        "  notification per packet: {interrupts:>7.2} us one-way (signal delivery on the path)"
    );

    println!("\n== A6: zero-copy rendezvous vs chunked one-copy (3 KB NX message) ==");
    for (allowed, latency_us) in zero_copy_on_off() {
        println!(
            "  zero-copy {:<5}  ->  {latency_us:>7.2} us one-way",
            allowed
        );
    }

    println!("\n== A7: credit-return batching (one-way 128 B stream) ==");
    for (batch, rate) in credit_batch_sweep() {
        println!("  batch {batch:>2}  ->  {:>9.0} messages/s", rate);
    }
}
