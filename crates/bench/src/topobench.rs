//! The topology-zoo study: collective latency per fabric, software vs
//! in-network hardware offload, and the adaptive-routing ablation.
//!
//! Three questions, all answered in virtual time (bit-identically
//! reproducible):
//!
//! * **Does the backplane generalize?** The same barrier + allreduce
//!   workload runs over every in-order fabric in the zoo — 2-D mesh,
//!   torus, two-level fat-tree, dragonfly — at 4, 16, and 64 nodes,
//!   with correctness checked against a host-side reference every run.
//! * **Is in-network computing worth router area?** Each cell runs
//!   twice, [`CollImpl::Software`] vs [`CollImpl::Hardware`]: the
//!   combining/replication stage crosses each spanning-tree link once
//!   per direction, versus the software algorithms' `log n` end-host
//!   rounds. The rendered curve records the speedup per fabric and
//!   size; the 64-node (8×8) rows are the headline.
//! * **What does non-minimal adaptive routing trade away?** The
//!   ablation drives the raw backplane under mirror-partner packet
//!   streams on the ordered mesh and on the Valiant-routed [`AdaptiveMesh`],
//!   reporting delivered latency *and* the out-of-order deliveries the
//!   adaptive fabric produces — the reorder count is exactly why VMMC
//!   (and so the whole system stack) refuses to build on it.
//!
//! Digests over every virtual quantity gate `BENCH_topo.json` in CI
//! (`topobench --smoke --check`).

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_coll::{CollConfig, CollImpl};
use shrimp_mesh::{
    AdaptiveMesh, Backplane, Dragonfly, FatTree, LinkParams, Mesh2D, NodeId, TopologyRef, Torus2D,
};
use shrimp_sim::Kernel;

use crate::collectives::{allreduce_sweep_with, barrier_latency_with};

/// Barrier rounds per timed cell.
const BARRIER_ROUNDS: u32 = 4;
/// Allreduce rounds per timed cell.
const SWEEP_ROUNDS: u32 = 2;
/// Allreduce payload (bytes) for the zoo comparison.
const ALLREDUCE_BYTES: usize = 1024;
/// Input seed for the verified allreduce rounds.
const SEED: u64 = 7;

/// The fabrics the study covers at `nodes` compute nodes (a perfect
/// square). Shapes follow the natural radix at each size: square
/// mesh/torus, a two-level fat-tree with √n-node leaves, and a √n × √n
/// dragonfly.
pub fn zoo(nodes: usize) -> Vec<TopologyRef> {
    let side = (nodes as f64).sqrt() as usize;
    assert_eq!(side * side, nodes, "zoo sizes are perfect squares");
    vec![
        Arc::new(Mesh2D::new(side, side)) as TopologyRef,
        Arc::new(Torus2D::new(side, side)) as TopologyRef,
        Arc::new(FatTree::new(nodes, side, (side / 2).max(2))) as TopologyRef,
        Arc::new(Dragonfly::new(side, side)) as TopologyRef,
    ]
}

/// Node counts the study sweeps (the 4-node prototype, the 16-node
/// planned machine, and the 8×8 scale-out point).
pub fn sizes(smoke: bool) -> Vec<usize> {
    if smoke {
        vec![4, 16]
    } else {
        vec![4, 16, 64]
    }
}

/// One measured zoo cell: a fabric at a size, software vs hardware.
#[derive(Debug, Clone)]
pub struct TopoPoint {
    /// Fabric name ("mesh", "torus", ...).
    pub topo: String,
    /// Compute nodes.
    pub nodes: usize,
    /// Fabric diameter in links.
    pub diameter: usize,
    /// Unidirectional physical links.
    pub links: usize,
    /// Software barrier latency, microseconds per operation.
    pub sw_barrier_us: f64,
    /// In-network barrier latency, microseconds per operation.
    pub hw_barrier_us: f64,
    /// Software allreduce (1 KiB, selector's algorithm), microseconds.
    pub sw_allreduce_us: f64,
    /// In-network allreduce (1 KiB), microseconds.
    pub hw_allreduce_us: f64,
}

impl TopoPoint {
    /// Software-over-hardware barrier speedup.
    pub fn barrier_speedup(&self) -> f64 {
        self.sw_barrier_us / self.hw_barrier_us
    }

    /// Software-over-hardware allreduce speedup.
    pub fn allreduce_speedup(&self) -> f64 {
        self.sw_allreduce_us / self.hw_allreduce_us
    }
}

/// One ablation row: the same burst on an ordered vs adaptive fabric.
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// Fabric name.
    pub topo: String,
    /// Mean tail-arrival latency of the burst, microseconds.
    pub mean_us: f64,
    /// Worst tail-arrival latency, microseconds.
    pub max_us: f64,
    /// Deliveries that overtook an earlier same-pair injection.
    pub reordered: u64,
}

/// Run the software-vs-hardware comparison for one fabric.
///
/// # Panics
///
/// Panics if any allreduce round produces a wrong sum (the sweep
/// verifies against a host-side reference), or if a cell fails to
/// quiesce.
pub fn run_point(topo: &TopologyRef) -> TopoPoint {
    let cell = |impl_: CollImpl| {
        let config = CollConfig {
            impl_,
            ..CollConfig::default()
        };
        let barrier = barrier_latency_with(Arc::clone(topo), config.clone(), BARRIER_ROUNDS);
        let sweep = allreduce_sweep_with(
            Arc::clone(topo),
            config,
            &[ALLREDUCE_BYTES],
            None,
            SWEEP_ROUNDS,
            SEED,
        );
        (barrier, sweep[0].us_per_op)
    };
    let (sw_barrier_us, sw_allreduce_us) = cell(CollImpl::Software);
    let (hw_barrier_us, hw_allreduce_us) = cell(CollImpl::Hardware);
    TopoPoint {
        topo: topo.name().to_string(),
        nodes: topo.len(),
        diameter: topo.diameter(),
        links: topo.links().len(),
        sw_barrier_us,
        hw_barrier_us,
        sw_allreduce_us,
        hw_allreduce_us,
    }
}

/// The full zoo sweep: every fabric at every size.
pub fn run_zoo(smoke: bool) -> Vec<TopoPoint> {
    let mut out = Vec::new();
    for n in sizes(smoke) {
        for topo in zoo(n) {
            out.push(run_point(&topo));
        }
    }
    out
}

/// The adaptive-routing ablation: every node streams `per_node` small
/// packets to its mirror partner (`n-1-src`) across the bisection on
/// the raw backplane, ordered mesh vs Valiant-routed adaptive mesh.
/// Returns one row per fabric.
///
/// Small payloads make the injection gap (~90 ns serialized) smaller
/// than the Valiant path-length spread (up to 2× the diameter at 50 ns
/// per hop), so a later packet on a short random route overtakes an
/// earlier one on a long route — the reorder VMMC's in-order import
/// contract cannot absorb.
///
/// # Panics
///
/// Panics when the adaptive fabric fails to produce at least one
/// out-of-order delivery (the ablation exists to show the trade), or
/// when any packet is lost.
pub fn adaptive_ablation(width: usize, height: usize, per_node: usize) -> Vec<AblationPoint> {
    let fabrics: Vec<TopologyRef> = vec![
        Arc::new(Mesh2D::new(width, height)),
        Arc::new(AdaptiveMesh::new(width, height)),
    ];
    let mut out = Vec::new();
    for topo in fabrics {
        let n = topo.len();
        let kernel = Kernel::new();
        let net: Arc<Backplane<u64>> =
            Backplane::new(kernel.handle(), Arc::clone(&topo), LinkParams::paragon());
        let arrivals: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        for node in topo.nodes() {
            let arrivals = Arc::clone(&arrivals);
            net.attach(node, move |d| {
                arrivals.lock().push(d.at.as_ps());
            });
        }
        // Deterministic partner streams, all injected at t = 0 so the
        // fabrics contend identically: same-pair sequences are exactly
        // what exposes ordering.
        let mut sent = 0u64;
        for node in topo.nodes() {
            let dst = NodeId(n - 1 - node.0);
            for _ in 0..per_node {
                net.inject(node, dst, 8, sent);
                sent += 1;
            }
        }
        kernel.run_until_quiescent().expect("burst must drain");
        let arrivals = arrivals.lock();
        assert_eq!(arrivals.len() as u64, sent, "every packet must arrive");
        let mean_ps = arrivals.iter().sum::<u64>() as f64 / arrivals.len() as f64;
        let max_ps = *arrivals.iter().max().expect("non-empty burst");
        out.push(AblationPoint {
            topo: topo.name().to_string(),
            mean_us: mean_ps / 1e6,
            max_us: max_ps as f64 / 1e6,
            reordered: net.stats().reordered,
        });
    }
    assert_eq!(out[0].reordered, 0, "the ordered mesh must never reorder");
    assert!(
        out[1].reordered > 0,
        "the adaptive burst must show the reorders VMMC cannot accept"
    );
    out
}

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// Replay-stable digest over the zoo curves plus the ablation.
pub fn topo_digest(points: &[TopoPoint], ablation: &[AblationPoint]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for p in points {
        fnv(&mut h, p.topo.as_bytes());
        for v in [p.nodes as u64, p.diameter as u64, p.links as u64] {
            fnv(&mut h, &v.to_le_bytes());
        }
        for v in [
            p.sw_barrier_us,
            p.hw_barrier_us,
            p.sw_allreduce_us,
            p.hw_allreduce_us,
        ] {
            fnv(&mut h, &v.to_bits().to_le_bytes());
        }
    }
    for a in ablation {
        fnv(&mut h, a.topo.as_bytes());
        fnv(&mut h, &a.mean_us.to_bits().to_le_bytes());
        fnv(&mut h, &a.max_us.to_bits().to_le_bytes());
        fnv(&mut h, &a.reordered.to_le_bytes());
    }
    h
}

/// Render the committed `results/topo_curve.txt` (byte-identical
/// across replays).
pub fn render_curve(points: &[TopoPoint], ablation: &[AblationPoint]) -> String {
    let mut out = format!(
        "topology zoo: software vs in-network collectives \
         (barrier x{BARRIER_ROUNDS}, allreduce {ALLREDUCE_BYTES} B x{SWEEP_ROUNDS}, seed={SEED})\n\
         {:>10} {:>6} {:>5} {:>6} {:>9} {:>9} {:>8} {:>9} {:>9} {:>8}\n",
        "topo",
        "nodes",
        "diam",
        "links",
        "sw_bar",
        "hw_bar",
        "speedup",
        "sw_ar",
        "hw_ar",
        "speedup",
    );
    for p in points {
        out.push_str(&format!(
            "{:>10} {:>6} {:>5} {:>6} {:>9.2} {:>9.2} {:>7.2}x {:>9.2} {:>9.2} {:>7.2}x\n",
            p.topo,
            p.nodes,
            p.diameter,
            p.links,
            p.sw_barrier_us,
            p.hw_barrier_us,
            p.barrier_speedup(),
            p.sw_allreduce_us,
            p.hw_allreduce_us,
            p.allreduce_speedup(),
        ));
    }
    out.push_str("adaptive-routing ablation (4x4, 8 pkts/node mirror-partner streams):\n");
    for a in ablation {
        out.push_str(&format!(
            "{:>10} mean_us={:.2} max_us={:.2} reordered={}\n",
            a.topo, a.mean_us, a.max_us, a.reordered
        ));
    }
    if let Some(best) = points
        .iter()
        .filter(|p| p.nodes == 64)
        .find(|p| p.topo == "mesh")
    {
        out.push_str(&format!(
            "headline mesh 8x8: hw barrier {:.2}x, hw allreduce {:.2}x over best software\n",
            best.barrier_speedup(),
            best.allreduce_speedup(),
        ));
    }
    out
}

/// Render the committed `BENCH_topo.json` from the full run plus the
/// smoke configuration's digest (CI's topo-smoke job runs the cheap
/// smoke sweep and gates on `smoke_digest`; regenerating the file
/// requires both runs).
pub fn render_json(points: &[TopoPoint], ablation: &[AblationPoint], smoke_digest: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"comment\": [\n");
    out.push_str("    \"Topology zoo: the same barrier/allreduce workload over mesh,\",\n");
    out.push_str("    \"torus, fat-tree, and dragonfly fabrics, software algorithms vs\",\n");
    out.push_str("    \"the in-network combining stage, plus the adaptive-routing\",\n");
    out.push_str("    \"ablation. Generated by `cargo run --release -p shrimp-bench\",\n");
    out.push_str("    \"--bin topobench`. All quantities are virtual-time and\",\n");
    out.push_str("    \"deterministic: regenerating on any host must reproduce this\",\n");
    out.push_str("    \"file byte-identically. CI's topo-smoke job re-runs the smoke\",\n");
    out.push_str("    \"sweep and gates on smoke_digest.\"\n");
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"config\": {{\"barrier_rounds\": {BARRIER_ROUNDS}, \"allreduce_bytes\": \
         {ALLREDUCE_BYTES}, \"allreduce_rounds\": {SWEEP_ROUNDS}, \"seed\": {SEED}}},\n"
    ));
    out.push_str("  \"curve\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"topo\": \"{}\", \"nodes\": {}, \"diameter\": {}, \"links\": {}, \
             \"sw_barrier_us\": {:.2}, \"hw_barrier_us\": {:.2}, \"barrier_speedup\": {:.2}, \
             \"sw_allreduce_us\": {:.2}, \"hw_allreduce_us\": {:.2}, \
             \"allreduce_speedup\": {:.2}}}{}\n",
            p.topo,
            p.nodes,
            p.diameter,
            p.links,
            p.sw_barrier_us,
            p.hw_barrier_us,
            p.barrier_speedup(),
            p.sw_allreduce_us,
            p.hw_allreduce_us,
            p.allreduce_speedup(),
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"ablation\": [\n");
    for (i, a) in ablation.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"topo\": \"{}\", \"mean_us\": {:.2}, \"max_us\": {:.2}, \
             \"reordered\": {}}}{}\n",
            a.topo,
            a.mean_us,
            a.max_us,
            a.reordered,
            if i + 1 == ablation.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"smoke_digest\": \"{:016x}\",\n  \"topo_digest\": \"{:016x}\"\n}}\n",
        smoke_digest,
        topo_digest(points, ablation),
    ));
    out
}

/// Extract a `"<field>": "<16 hex>"` digest from a committed
/// `BENCH_topo.json`.
pub fn committed_digest(json: &str, field: &str) -> Option<u64> {
    let at = json.find(&format!("\"{field}\""))?;
    let tail = &json[at..];
    let q1 = tail.find(": \"")? + 3;
    let hex = tail.get(q1..q1 + 16)?;
    u64::from_str_radix(hex, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_covers_four_fabrics_at_every_size() {
        for n in sizes(false) {
            let names: Vec<String> = zoo(n).iter().map(|t| t.name().to_string()).collect();
            assert_eq!(names, ["mesh", "torus", "fattree", "dragonfly"]);
            for t in zoo(n) {
                assert_eq!(t.len(), n);
            }
        }
    }

    #[test]
    fn hardware_wins_on_every_smoke_fabric_and_replays() {
        let a = run_zoo(true);
        for p in &a {
            assert!(
                p.hw_barrier_us < p.sw_barrier_us,
                "{} n={}: hw barrier {:.2} us must beat sw {:.2} us",
                p.topo,
                p.nodes,
                p.hw_barrier_us,
                p.sw_barrier_us
            );
            assert!(
                p.hw_allreduce_us < p.sw_allreduce_us,
                "{} n={}: hw allreduce {:.2} us must beat sw {:.2} us",
                p.topo,
                p.nodes,
                p.hw_allreduce_us,
                p.sw_allreduce_us
            );
        }
        let b = run_zoo(true);
        let abl_a = adaptive_ablation(4, 4, 8);
        let abl_b = adaptive_ablation(4, 4, 8);
        assert_eq!(
            topo_digest(&a, &abl_a),
            topo_digest(&b, &abl_b),
            "the zoo must replay bit-identically"
        );
    }

    #[test]
    fn ablation_shows_the_reorder_trade() {
        let abl = adaptive_ablation(4, 4, 8);
        assert_eq!(abl[0].topo, "mesh");
        assert_eq!(abl[1].topo, "adaptive");
        // The asserts inside adaptive_ablation carry the contract; here
        // just pin the rendering shape.
        let txt = render_curve(&run_zoo(true), &abl);
        assert!(txt.contains("adaptive-routing ablation"));
        assert!(txt.contains("reordered="));
    }

    #[test]
    fn digest_extraction_roundtrips() {
        let points = run_zoo(true);
        let abl = adaptive_ablation(4, 4, 8);
        let json = render_json(&points, &abl, 0xdead_beef_dead_beef);
        assert_eq!(
            committed_digest(&json, "topo_digest"),
            Some(topo_digest(&points, &abl))
        );
        assert_eq!(
            committed_digest(&json, "smoke_digest"),
            Some(0xdead_beef_dead_beef)
        );
    }
}
