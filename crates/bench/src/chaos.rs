//! The chaos harness: the paper's workloads rerun under fault injection.
//!
//! Each cell of the matrix builds a fresh prototype system, arms one
//! [`FaultPlan`], and drives one of the evaluation workloads through it:
//!
//! * **vmmc** — the Figure 3 deliberate-update ping-pong, with every
//!   round's payload stamped so reordering or corruption is caught.
//! * **nx** — the Figure 4 NX ping-pong over [`NxWorld::try_join`].
//! * **coll** — barrier + verified allreduce rounds over the
//!   `shrimp-coll` persistent channel geometry, joined through its
//!   fallible [`CollWorld::try_join`] path.
//! * **socket** — the Figure 7 stream-socket echo.
//! * **svc** — the sharded replicated KV service: single-writer
//!   put/get rounds with a read-your-write check, riding out outages
//!   through the client's timeout-driven re-routing.
//! * **rmc** — disaggregated-memory paging: an LRU [`RemotePager`] on
//!   node 0 over a [`MemoryServer`] pool on node 1, every read checked
//!   against a local reference model, so a stalled, reordered, or
//!   dropped fetch reply (or a lost write-back) is caught as
//!   corruption.
//!
//! The harness asserts the recovery contract, not performance: no
//! corruption, per-pair ordering, completion within a bounded delay
//! budget, a clean (quiescent) shutdown, and — because both the kernel
//! and the fault engine are deterministic — bit-identical reports for
//! identical seeds. Injected IPT violations must traverse the paper's
//! freeze-and-interrupt path and come back repaired.

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_coll::{CollConfig, CollError, CollWorld};
use shrimp_core::{BufferName, ExportOpts, ShrimpSystem, SystemConfig, Vmmc, VmmcError};
use shrimp_mesh::{Mesh2D, NodeId, TopologyRef};
use shrimp_node::{CacheMode, VAddr, PAGE_SIZE};
use shrimp_nx::{NxConfig, NxError, NxWorld};
use shrimp_rmc::{MemoryServer, RemotePager};
use shrimp_sim::{
    Ctx, FaultEvent, FaultKind, FaultPlan, FaultSpec, Kernel, RetryPolicy, SimDur, SimTime,
};
use shrimp_sockets::{connect, listen, SocketError, SocketVariant};
use shrimp_svc::{RetryClass, SvcClient, SvcCluster, SvcConfig, SvcError};

/// Which evaluation workload a cell drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Figure 3: raw VMMC deliberate-update ping-pong.
    Vmmc,
    /// Figure 4: NX library ping-pong.
    Nx,
    /// Collective rounds (barrier + verified allreduce) on shrimp-coll.
    Coll,
    /// Figure 7: stream-socket echo.
    Socket,
    /// Sharded replicated KV service (shrimp-svc) put/get rounds.
    Svc,
    /// Disaggregated-memory paging (shrimp-rmc) over one-sided fetch.
    Rmc,
}

impl Workload {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            Workload::Vmmc => "vmmc",
            Workload::Nx => "nx",
            Workload::Coll => "coll",
            Workload::Socket => "socket",
            Workload::Svc => "svc",
            Workload::Rmc => "rmc",
        }
    }

    /// All six, in report order.
    pub fn all() -> [Workload; 6] {
        [
            Workload::Vmmc,
            Workload::Nx,
            Workload::Coll,
            Workload::Socket,
            Workload::Svc,
            Workload::Rmc,
        ]
    }
}

/// Round count per workload — enough traffic that mid-run faults land
/// between transfers, small enough for the full matrix to stay quick.
const ROUNDS: u32 = 10;
const POLL_BUDGET: usize = 10_000;

/// One cell's measured outcome. Every field derives from virtual time
/// and the deterministic fault log, so rendering it is replay-stable.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Workload label.
    pub workload: &'static str,
    /// Matrix row name (e.g. `light-7`).
    pub plan_name: String,
    /// Number of fault events the plan injected.
    pub events: usize,
    /// Virtual time at which the driving process finished, in
    /// picoseconds (integer, so reports compare byte-for-byte).
    pub finished_ps: u64,
    /// Protection violations the freeze path observed.
    pub violations: usize,
    /// The system's fault log, rendered.
    pub log: String,
}

impl CellOutcome {
    /// Deterministic one-cell rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "cell workload={} plan={} events={} finished_ps={} violations={}\n",
            self.workload, self.plan_name, self.events, self.finished_ps, self.violations
        );
        out.push_str(&self.log);
        out
    }
}

/// Upper bound on the extra virtual time a plan may cost a workload:
/// the sum of every fault's worst-case delay contribution plus the
/// retry budgets the libraries may burn riding out daemon outages.
pub fn delay_budget(plan: &FaultPlan) -> SimDur {
    let boot = RetryPolicy::bootstrap();
    plan.events.iter().fold(SimDur::ZERO, |acc, ev| {
        acc + match &ev.kind {
            FaultKind::LinkStall { dur, .. } => *dur,
            FaultKind::PortStall { dur, .. } => *dur,
            // Work inside a brownout dilates by at most `factor`.
            FaultKind::Brownout { factor, dur } => {
                SimDur::from_ps((dur.as_ps() as f64 * (factor - 1.0).max(0.0)) as u64 + 1)
            }
            FaultKind::DmaStall { dur, .. } => *dur,
            // Freeze, interrupt, repair, retry of the frozen packet —
            // plus, for one-sided traffic, the backoffs a requester
            // burns on fetches the frozen node denies until the OS
            // repair re-enables the page (the deny is immediate but the
            // retry loop's exponential backoff is not).
            FaultKind::IptViolation { .. } => {
                SimDur::from_us(100.0) + boot.timeout(0) + boot.timeout(1)
            }
            // The outage itself plus every bounded wait a retry loop
            // may spend discovering the daemon is back, plus the
            // re-replication sync the watchdog runs afterwards (freeze
            // window, snapshot stream, epoch re-bind churn).
            FaultKind::DaemonCrash { downtime, .. } => {
                *downtime + boot.total_budget() + SimDur::from_us(500.0)
            }
            // The engine holds requests and replies for the stall
            // window; requesters park until completion (no drops, no
            // retries), so the extra cost is the window plus the drain
            // of whatever queued behind it.
            FaultKind::FetchStall { dur, .. } => *dur + SimDur::from_us(100.0),
            // A scripted directive (e.g. a live shard migration):
            // freeze window + delta drain + every client re-binding
            // under the bumped epoch.
            FaultKind::Directive { .. } => SimDur::from_us(1_000.0),
        }
    })
}

/// Export with bounded retry through daemon outages (exports have no
/// built-in retry path; the chaos workloads must survive a crash landing
/// mid-setup).
fn export_retry(vmmc: &Vmmc, ctx: &Ctx, va: VAddr, len: usize, policy: RetryPolicy) -> BufferName {
    for attempt in 0..policy.attempts {
        match vmmc.export(ctx, va, len, ExportOpts::default()) {
            Ok(name) => return name,
            Err(VmmcError::DaemonUnavailable { .. }) if attempt + 1 < policy.attempts => {
                ctx.advance(policy.timeout(attempt));
            }
            Err(e) => panic!("chaos export failed: {e}"),
        }
    }
    panic!("chaos export exhausted its retry budget");
}

/// Run one cell: fresh prototype system, one plan, one workload.
///
/// # Panics
///
/// Panics on any contract breach: corrupted or reordered payloads, a
/// failed shutdown, or an endpoint error the retry policies should have
/// absorbed.
pub fn run_cell(workload: Workload, plan_name: &str, plan: &FaultPlan) -> CellOutcome {
    run_cell_events(workload, plan_name, plan).0
}

/// [`run_cell`] on an arbitrary (in-order) fabric: the workloads derive
/// their endpoints from the topology's own node enumeration, so the
/// same recovery matrix runs unchanged on a torus or a fat-tree.
///
/// # Panics
///
/// As [`run_cell`].
pub fn run_cell_on(
    topo: TopologyRef,
    workload: Workload,
    plan_name: &str,
    plan: &FaultPlan,
) -> CellOutcome {
    run_cell_events_on(topo, workload, plan_name, plan).0
}

/// [`run_cell`], also returning the raw timestamped fault-log entries
/// (for overlaying on an observability trace).
///
/// # Panics
///
/// As [`run_cell`].
pub fn run_cell_events(
    workload: Workload,
    plan_name: &str,
    plan: &FaultPlan,
) -> (CellOutcome, Vec<(SimTime, String)>) {
    run_cell_events_on(
        Arc::new(Mesh2D::shrimp_prototype()),
        workload,
        plan_name,
        plan,
    )
}

/// [`run_cell_events`] on an arbitrary (in-order) fabric.
///
/// # Panics
///
/// As [`run_cell`].
pub fn run_cell_events_on(
    topo: TopologyRef,
    workload: Workload,
    plan_name: &str,
    plan: &FaultPlan,
) -> (CellOutcome, Vec<(SimTime, String)>) {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::with_topology(topo));
    let log = system.apply_faults(plan);
    let finished: Arc<Mutex<Option<SimTime>>> = Arc::new(Mutex::new(None));

    match workload {
        Workload::Vmmc => vmmc_workload(&kernel, &system, &finished),
        Workload::Nx => nx_workload(&kernel, &system, &finished),
        Workload::Coll => coll_workload(&kernel, &system, &finished),
        Workload::Socket => socket_workload(&kernel, &system, &finished),
        Workload::Svc => svc_workload(&kernel, &system, &finished),
        Workload::Rmc => rmc_workload(&kernel, &system, &finished),
    }

    kernel
        .run_until_quiescent()
        .expect("chaos cell must shut down cleanly");
    assert!(system.quiescent(), "all injected traffic must drain");
    let finished = finished.lock().expect("driver process never finished");
    let outcome = CellOutcome {
        workload: workload.label(),
        plan_name: plan_name.to_string(),
        events: plan.events.len(),
        finished_ps: (finished - SimTime::ZERO).as_ps(),
        violations: system.violations().len(),
        log: log.render(),
    };
    (outcome, log.snapshot())
}

/// The two traffic-carrying endpoints of a pairwise cell, taken from
/// the fabric's own node enumeration (its first two compute nodes)
/// rather than from assumed grid numbering — the same workloads run
/// unchanged on any topology the cell is built over.
fn traffic_pair(system: &ShrimpSystem) -> (usize, usize) {
    let mut nodes = system.topology().nodes();
    let a = nodes.next().expect("fabric has at least one node").0;
    let b = nodes.next().expect("chaos workloads need >= 2 nodes").0;
    (a, b)
}

/// Figure 3 workload: deliberate-update ping-pong, one page per message.
/// Round `r`'s payload is `r`-stamped and the flag word is the round's
/// sequence number, so any reorder or corruption trips an assert.
fn vmmc_workload(
    kernel: &Kernel,
    system: &Arc<ShrimpSystem>,
    finished: &Arc<Mutex<Option<SimTime>>>,
) {
    let n = PAGE_SIZE;
    let (node_a, node_b) = traffic_pair(system);
    let ping_names: shrimp_sim::SimChannel<BufferName> = shrimp_sim::SimChannel::new();
    let pong_names: shrimp_sim::SimChannel<BufferName> = shrimp_sim::SimChannel::new();
    let policy = RetryPolicy::bootstrap();
    {
        let ping = system.endpoint(node_a, "chaos-ping");
        let (ping_names, pong_names) = (ping_names.clone(), pong_names.clone());
        let finished = Arc::clone(finished);
        kernel.spawn("chaos-ping", move |ctx| {
            let recv = ping.proc_().alloc(n, CacheMode::WriteBack);
            let user = ping.proc_().alloc(n, CacheMode::WriteBack);
            let name = export_retry(&ping, ctx, recv, n, policy);
            ping_names.send(&ctx.handle(), name);
            let peer_name = pong_names.recv(ctx);
            let peer = ping
                .import_retry(ctx, NodeId(node_b), peer_name, policy)
                .unwrap();
            for r in 0..ROUNDS {
                let seq = r * 2 + 1;
                let fill = vec![seq as u8; n - 4];
                ping.proc_().poke(user, &fill).unwrap();
                ping.proc_().write_u32(ctx, user.add(n - 4), seq).unwrap();
                ping.send(ctx, user, &peer, 0, n).unwrap();
                ping.wait_u32(ctx, recv.add(n - 4), POLL_BUDGET, move |v| v == seq + 1)
                    .unwrap();
                let echo = ping.proc_().peek(recv, n - 4).unwrap();
                assert!(
                    echo.iter().all(|&b| b == (seq + 1) as u8),
                    "round {r}: echo payload corrupted or out of order"
                );
            }
            *finished.lock() = Some(ctx.now());
        });
    }
    {
        let pong = system.endpoint(node_b, "chaos-pong");
        kernel.spawn("chaos-pong", move |ctx| {
            let recv = pong.proc_().alloc(n, CacheMode::WriteBack);
            let user = pong.proc_().alloc(n, CacheMode::WriteBack);
            let name = export_retry(&pong, ctx, recv, n, policy);
            pong_names.send(&ctx.handle(), name);
            let peer_name = ping_names.recv(ctx);
            let peer = pong
                .import_retry(ctx, NodeId(node_a), peer_name, policy)
                .unwrap();
            for r in 0..ROUNDS {
                let seq = r * 2 + 1;
                pong.wait_u32(ctx, recv.add(n - 4), POLL_BUDGET, move |v| v == seq)
                    .unwrap();
                let got = pong.proc_().peek(recv, n - 4).unwrap();
                assert!(
                    got.iter().all(|&b| b == seq as u8),
                    "round {r}: payload corrupted or out of order"
                );
                let fill = vec![(seq + 1) as u8; n - 4];
                pong.proc_().poke(user, &fill).unwrap();
                pong.proc_()
                    .write_u32(ctx, user.add(n - 4), seq + 1)
                    .unwrap();
                pong.send(ctx, user, &peer, 0, n).unwrap();
            }
        });
    }
}

/// Figure 4 workload: NX ping-pong through the fallible join path.
fn nx_workload(
    kernel: &Kernel,
    system: &Arc<ShrimpSystem>,
    finished: &Arc<Mutex<Option<SimTime>>>,
) {
    // One packet buffer per pair: every send lands on data-region page
    // 0, so an injected IPT violation is guaranteed to meet traffic and
    // traverse the freeze path (and flow control is maximally stressed).
    let mut cfg = NxConfig::paper_default();
    cfg.packet_buffers = 1;
    let (node_a, node_b) = traffic_pair(system);
    let world = NxWorld::new(Arc::clone(system), cfg, vec![node_a, node_b]);
    let size = 1024usize;
    for rank in 0..2usize {
        let world = Arc::clone(&world);
        let finished = Arc::clone(finished);
        kernel.spawn(format!("chaos-rank{rank}"), move |ctx| {
            // A daemon crash during the export phase surfaces as a typed
            // error before the rendezvous; back off and rejoin.
            let mut nx = loop {
                match world.try_join(ctx, rank, RetryPolicy::bootstrap()) {
                    Ok(p) => break p,
                    Err(NxError::Vmmc(VmmcError::DaemonUnavailable { .. })) => {
                        ctx.advance(SimDur::from_us(5_000.0));
                    }
                    Err(e) => panic!("chaos NX join failed: {e}"),
                }
            };
            let sbuf = nx.vmmc().proc_().alloc(size, CacheMode::WriteBack);
            let rbuf = nx.vmmc().proc_().alloc(size, CacheMode::WriteBack);
            for r in 0..ROUNDS {
                let stamp = (r as u8).wrapping_mul(7).wrapping_add(rank as u8);
                let peer_stamp = (r as u8).wrapping_mul(7).wrapping_add(1 - rank as u8);
                nx.vmmc().proc_().poke(sbuf, &vec![stamp; size]).unwrap();
                if rank == 0 {
                    nx.csend(ctx, r as i32 + 1, sbuf, size, 1).unwrap();
                    nx.crecv(ctx, r as i32 + 1, rbuf, size).unwrap();
                } else {
                    nx.crecv(ctx, r as i32 + 1, rbuf, size).unwrap();
                    nx.csend(ctx, r as i32 + 1, sbuf, size, 0).unwrap();
                }
                let got = nx.vmmc().proc_().peek(rbuf, size).unwrap();
                assert!(
                    got.iter().all(|&b| b == peer_stamp),
                    "rank {rank} round {r}: NX payload corrupted or out of order"
                );
            }
            nx.flush(ctx).unwrap();
            if rank == 0 {
                *finished.lock() = Some(ctx.now());
            }
        });
    }
}

/// Collective workload: ROUNDS of barrier + allreduce over the
/// persistent shrimp-coll channel geometry between nodes 0 and 1.
/// Setup rides out daemon outages through [`CollWorld::try_join`]'s
/// retrying export/import path; every round's sums are checked, so any
/// corruption, reorder, or lost flag under brownouts, link stalls, or
/// IPT freezes trips an assert.
fn coll_workload(
    kernel: &Kernel,
    system: &Arc<ShrimpSystem>,
    finished: &Arc<Mutex<Option<SimTime>>>,
) {
    let (node_a, node_b) = traffic_pair(system);
    let world = CollWorld::new(
        Arc::clone(system),
        CollConfig::default(),
        vec![node_a, node_b],
    );
    let n = 2usize;
    for rank in 0..n {
        let world = Arc::clone(&world);
        let finished = Arc::clone(finished);
        kernel.spawn(format!("chaos-coll{rank}"), move |ctx| {
            // A daemon crash landing inside the export/import phases
            // surfaces typed before the rendezvous; back off and rejoin.
            let mut comm = loop {
                match world.try_join(ctx, rank, RetryPolicy::bootstrap(), None) {
                    Ok(c) => break c,
                    Err(CollError::Vmmc(VmmcError::DaemonUnavailable { .. })) => {
                        ctx.advance(SimDur::from_us(5_000.0));
                    }
                    Err(e) => panic!("chaos coll join failed: {e}"),
                }
            };
            // Enough rounds, at a full chunk per reduction, that the
            // traffic spans every plan's fault horizon (the scripted
            // IPT shot lands at 900 us; generated plans run to 4 ms).
            let lanes = 256usize;
            for r in 0..ROUNDS * 3 {
                comm.barrier(ctx).unwrap();
                let mine: Vec<f64> = (0..lanes)
                    .map(|j| ((j + rank + 1) % 97) as f64 + r as f64)
                    .collect();
                let sums = comm.allreduce_f64(ctx, &mine).unwrap();
                for (j, &got) in sums.iter().enumerate() {
                    let want = ((j + 1) % 97) as f64 + ((j + 2) % 97) as f64 + 2.0 * r as f64;
                    assert_eq!(
                        got, want,
                        "rank {rank} round {r} lane {j}: allreduce sum corrupted"
                    );
                }
            }
            comm.barrier(ctx).unwrap();
            if rank == 0 {
                *finished.lock() = Some(ctx.now());
            }
        });
    }
}

/// Figure 7 workload: stream-socket echo; the byte stream itself is the
/// ordering check.
fn socket_workload(
    kernel: &Kernel,
    system: &Arc<ShrimpSystem>,
    finished: &Arc<Mutex<Option<SimTime>>>,
) {
    let size = 1536usize;
    let (node_a, node_b) = traffic_pair(system);
    {
        let vmmc = system.endpoint(node_b, "chaos-server");
        let eth = Arc::clone(system.ethernet());
        kernel.spawn("chaos-server", move |ctx| {
            let listener = listen(vmmc, eth, 7700);
            // A crash landing inside accept's export/import surfaces
            // typed; the client's connect retries resend the request.
            let mut sock = loop {
                match listener.accept(ctx) {
                    Ok(s) => break s,
                    Err(SocketError::Vmmc(VmmcError::DaemonUnavailable { .. })) => {
                        ctx.advance(SimDur::from_us(5_000.0));
                    }
                    Err(e) => panic!("chaos accept failed: {e}"),
                }
            };
            for _ in 0..ROUNDS {
                let msg = sock.recv_exact(ctx, size).unwrap();
                sock.send(ctx, &msg).unwrap();
            }
        });
    }
    {
        let vmmc = system.endpoint(node_a, "chaos-client");
        let eth = Arc::clone(system.ethernet());
        let finished = Arc::clone(finished);
        kernel.spawn("chaos-client", move |ctx| {
            let mut sock = connect(
                vmmc,
                ctx,
                &eth,
                NodeId(node_b),
                7700,
                SocketVariant::Du1Copy,
            )
            .unwrap();
            for r in 0..ROUNDS {
                let msg: Vec<u8> = (0..size).map(|i| (i as u8).wrapping_add(r as u8)).collect();
                sock.send(ctx, &msg).unwrap();
                let echo = sock.recv_exact(ctx, size).unwrap();
                assert_eq!(
                    echo, msg,
                    "round {r}: socket stream corrupted or out of order"
                );
            }
            sock.close(ctx).unwrap();
            *finished.lock() = Some(ctx.now());
        });
    }
}

/// KV-service workload: every client is the single writer of its own
/// key set, so after a put returns `Ok` (the commit ack) a subsequent
/// get must return exactly that value — across brownouts, daemon
/// restarts, and promotions. A visible failure (retry budget
/// exhausted mid-outage) is legal; a wrong or lost read is not.
fn svc_workload(
    kernel: &Kernel,
    system: &Arc<ShrimpSystem>,
    finished: &Arc<Mutex<Option<SimTime>>>,
) {
    let mut cfg = SvcConfig::chained(system.len());
    // Hedged reads on: a read stalling on a faulted primary re-issues
    // against the backup replica, so the read-your-write checks below
    // also audit replica-read safety under every plan.
    cfg.hedge_reads = true;
    let cluster = SvcCluster::spawn(system, cfg);
    let n_clients = 2usize;
    cluster.register_clients(n_clients);
    // Clients spread over the fabric's enumerated nodes (on the 2x2
    // prototype: nodes 0 and 2) — one shares a node with a faulted
    // daemon, one observes the outages purely over the wire.
    let all: Vec<usize> = system.topology().nodes().map(|n| n.0).collect();
    for c in 0..n_clients {
        let cluster = Arc::clone(&cluster);
        let finished = Arc::clone(finished);
        let home = all[(c * all.len()) / n_clients];
        kernel.spawn(format!("chaos-svc{c}"), move |ctx| {
            let mut cli = SvcClient::new(&cluster, home, format!("chaos{c}"));
            // One key per shard, probe-selected against the ring so
            // every primary (and so every replication channel) carries
            // traffic — an injected fault can't land on an idle shard.
            let keys: Vec<Vec<u8>> = (0..cluster.config().shards)
                .map(|s| {
                    (0..10_000u32)
                        .map(|i| format!("chaos-c{c}-s{s}-{i}").into_bytes())
                        .find(|k| cli.shard_of(k) == s)
                        .expect("probing finds a key for every shard")
                })
                .collect();
            for r in 0..ROUNDS * 3 {
                for (k, key) in keys.iter().enumerate() {
                    let stamp = (r as u8).wrapping_mul(13).wrapping_add((c * 4 + k) as u8);
                    let val = vec![stamp; 32];
                    ride_out(ctx, || cli.put(ctx, key, &val).map(|_| ()));
                    let got = ride_out(ctx, || cli.get(ctx, key));
                    match got.1 {
                        Some(v) => assert_eq!(
                            v, val,
                            "client {c} round {r} key {k}: read-your-write violated"
                        ),
                        None => panic!("client {c} round {r} key {k}: acked write lost"),
                    }
                }
            }
            cluster.client_done();
            // Whole-run completion: the cell is done when the LAST
            // client is. Measuring a single client would not be
            // monotone under faults — backing one client off
            // de-contends the shared replication channels and can
            // finish the *other* client marginally earlier.
            let mut f = finished.lock();
            let now = ctx.now();
            *f = Some(f.map_or(now, |prev| prev.max(now)));
        });
    }
}

/// Disaggregated-memory workload: an LRU pager on node 0 over a
/// memory-server pool on node 1, driven by a deterministic mixed
/// read/write pattern. A local reference model shadows every write;
/// every read (and a full read-back sweep at the end, which forces
/// most pages through fresh remote fetches) is checked against it, so
/// a stalled, reordered, or dropped fetch reply — or a write-back the
/// server lost — surfaces as corruption, not as a slow run.
fn rmc_workload(
    kernel: &Kernel,
    system: &Arc<ShrimpSystem>,
    finished: &Arc<Mutex<Option<SimTime>>>,
) {
    const VPAGES: usize = 12;
    const FRAMES: usize = 4;
    let (node_a, node_b) = traffic_pair(system);
    let names: shrimp_sim::SimChannel<BufferName> = shrimp_sim::SimChannel::new();
    {
        let system = Arc::clone(system);
        let names = names.clone();
        kernel.spawn("chaos-memserver", move |ctx| {
            // The export consumes its endpoint on failure, so a daemon
            // crash landing mid-setup costs a fresh endpoint per retry.
            let policy = RetryPolicy::bootstrap();
            let mut attempt = 0;
            let srv = loop {
                let vmmc = system.endpoint(node_b, format!("chaos-mem-{attempt}"));
                match MemoryServer::export(vmmc, ctx, VPAGES) {
                    Ok(s) => break s,
                    Err(VmmcError::DaemonUnavailable { .. }) if attempt + 1 < policy.attempts => {
                        ctx.advance(policy.timeout(attempt));
                        attempt += 1;
                    }
                    Err(e) => panic!("chaos memory-server export failed: {e}"),
                }
            };
            names.send(&ctx.handle(), srv.name());
            // The server CPU is done: its NIC answers fetches and
            // accepts write-back deposits on its own.
        });
    }
    {
        let vmmc = system.endpoint(node_a, "chaos-pager");
        let finished = Arc::clone(finished);
        kernel.spawn("chaos-pager", move |ctx| {
            let name = names.recv(ctx);
            let pool = vmmc
                .import_retry(ctx, NodeId(node_b), name, RetryPolicy::bootstrap())
                .unwrap();
            let mut pager = RemotePager::new(vmmc, pool, VPAGES, FRAMES);
            let mut reference = vec![vec![0u8; PAGE_SIZE]; VPAGES];
            let mut rng = shrimp_sim::SplitMix64::new(0xC0FFEE);
            for op in 0..(ROUNDS as usize * 30) {
                let page = rng.next_below(VPAGES as u64) as usize;
                let off = rng.next_below((PAGE_SIZE - 64) as u64) as usize;
                let addr = page * PAGE_SIZE + off;
                if rng.next_below(100) < 40 {
                    let data = [(op % 251) as u8; 64];
                    ride_out_rmc(ctx, || pager.write(ctx, addr, &data));
                    reference[page][off..off + 64].copy_from_slice(&data);
                } else {
                    let got = ride_out_rmc(ctx, || pager.read(ctx, addr, 64));
                    assert_eq!(
                        got,
                        &reference[page][off..off + 64],
                        "op {op}: page {page} off {off} diverged from the reference"
                    );
                }
            }
            ride_out_rmc(ctx, || pager.flush(ctx));
            // Full sweep: with VPAGES > FRAMES most pages fault back in
            // from the server, auditing its post-write-back contents.
            for (page, want) in reference.iter().enumerate() {
                let got = ride_out_rmc(ctx, || pager.read(ctx, page * PAGE_SIZE, PAGE_SIZE));
                assert_eq!(&got, want, "final sweep: page {page} lost a write-back");
            }
            *finished.lock() = Some(ctx.now());
        });
    }
}

/// Retry a pager operation through outages: a daemon outage or bounded
/// wait outlasting the pager's built-in retry policy means "the far
/// memory is unreachable right now" — back off one watchdog-scale beat
/// and reissue. Anything else (a protection deny on a read-exported
/// pool, a wild address) is a contract breach.
fn ride_out_rmc<T>(ctx: &Ctx, mut op: impl FnMut() -> Result<T, VmmcError>) -> T {
    loop {
        match op() {
            Ok(v) => return v,
            Err(
                VmmcError::DaemonUnavailable { .. }
                | VmmcError::Timeout { .. }
                | VmmcError::FetchDenied { .. },
            ) => {
                ctx.advance(SimDur::from_us(1_000.0));
            }
            Err(e) => panic!("chaos rmc op failed: {e}"),
        }
    }
}

/// Retry `op` through outages, using the error's own retry
/// classification: every [`RetryClass::Transient`] failure (timeouts,
/// daemon outages, exhausted attempt budgets, expired deadline
/// budgets) means "the route is down right now" — back off one
/// watchdog-scale beat and go again. A terminal error is a contract
/// breach.
fn ride_out<T>(ctx: &Ctx, mut op: impl FnMut() -> Result<T, SvcError>) -> T {
    loop {
        match op() {
            Ok(v) => return v,
            Err(e) if e.class() == RetryClass::Transient => {
                ctx.advance(SimDur::from_us(1_000.0));
            }
            Err(e) => panic!("chaos svc op failed: {e}"),
        }
    }
}

/// The default fault-plan matrix: a healthy baseline, a scripted IPT
/// violation timed to land mid-traffic, and a light + heavy generated
/// plan per seed.
pub fn default_matrix(nodes: usize, seeds: &[u64]) -> Vec<(String, FaultPlan)> {
    let horizon = SimDur::from_us(4_000.0);
    let mut m = vec![
        ("baseline".to_string(), FaultPlan::empty()),
        (
            "scripted-ipt".to_string(),
            FaultPlan::scripted(vec![FaultEvent {
                at: SimTime::ZERO + SimDur::from_us(900.0),
                kind: FaultKind::IptViolation { node: 1 },
            }]),
        ),
    ];
    for &s in seeds {
        m.push((
            format!("light-{s}"),
            FaultPlan::generate(s, &FaultSpec::light(nodes, horizon)),
        ));
        m.push((
            format!("heavy-{s}"),
            FaultPlan::generate(s, &FaultSpec::heavy(nodes, horizon)),
        ));
    }
    m
}

/// Run the full matrix for one workload, asserting the recovery
/// contract cell by cell, and return the outcomes (baseline first).
///
/// # Panics
///
/// Panics on any contract breach (see [`run_cell`]), on a cell
/// exceeding the baseline by more than the plan's delay budget, or on
/// a scripted IPT cell whose log lacks the freeze → repair traversal.
pub fn run_matrix(workload: Workload, matrix: &[(String, FaultPlan)]) -> Vec<CellOutcome> {
    let mut outcomes = Vec::with_capacity(matrix.len());
    let mut baseline_ps: Option<u64> = None;
    for (name, plan) in matrix {
        let out = run_cell(workload, name, plan);
        if name == "baseline" {
            baseline_ps = Some(out.finished_ps);
        } else if let Some(base) = baseline_ps {
            let allowed = base + delay_budget(plan).as_ps();
            assert!(
                out.finished_ps <= allowed,
                "{} {}: finished at {} ps, over the bounded-degradation limit {} ps",
                workload.label(),
                name,
                out.finished_ps,
                allowed
            );
            // Monotonicity holds for every workload, svc included:
            // the PR 5 escape hatch existed because a promoted shard
            // stayed unreplicated and its cheaper degraded writes
            // could outrun the baseline. The watchdog's automatic
            // re-replication closes that — replication (and its cost)
            // come back, so faults can only slow a run down.
            assert!(
                out.finished_ps >= base,
                "{} {}: faults must never speed a run up",
                workload.label(),
                name
            );
        }
        if name == "scripted-ipt" {
            assert!(
                out.violations > 0,
                "scripted IPT violation must trip the freeze path"
            );
            assert!(
                out.log.contains("freeze node=1") && out.log.contains("repair node=1"),
                "{} scripted-ipt: log lacks freeze/repair traversal:\n{}",
                workload.label(),
                out.log
            );
        }
        outcomes.push(out);
    }
    outcomes
}

/// Deterministic full-report rendering (byte-identical across replays
/// of the same matrix).
pub fn render_report(outcomes: &[CellOutcome]) -> String {
    let mut out = String::from("chaos report\n");
    for cell in outcomes {
        out.push_str(&cell.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vmmc_scripted_ipt_traverses_freeze_and_repair() {
        let matrix = default_matrix(2, &[]);
        let outcomes = run_matrix(Workload::Vmmc, &matrix);
        assert_eq!(outcomes.len(), 2);
        let ipt = &outcomes[1];
        assert!(ipt.violations > 0);
        assert!(ipt.log.contains("freeze node=1"));
        assert!(ipt.log.contains("repair node=1"));
        assert!(
            ipt.finished_ps > outcomes[0].finished_ps,
            "freeze must cost time"
        );
    }

    #[test]
    fn same_seed_reports_are_bit_identical() {
        let matrix = default_matrix(2, &[11]);
        let a = render_report(&run_matrix(Workload::Vmmc, &matrix));
        let b = render_report(&run_matrix(Workload::Vmmc, &matrix));
        assert_eq!(a, b, "same seed and plan must replay bit-identically");
        let other = default_matrix(2, &[12]);
        let c = render_report(&run_matrix(Workload::Vmmc, &other));
        assert_ne!(a, c, "different seeds should differ somewhere");
    }

    #[test]
    fn socket_workload_survives_light_faults() {
        let matrix = default_matrix(2, &[3]);
        let outcomes = run_matrix(Workload::Socket, &matrix);
        assert_eq!(outcomes.len(), 4);
    }

    #[test]
    fn coll_workload_survives_brownout_and_daemon_restart() {
        // The two plans the collective layer must specifically ride
        // out: a mesh-wide bandwidth brownout landing mid-traffic, and
        // a daemon restart landing in the export/import setup phase.
        let mut matrix = default_matrix(2, &[]);
        matrix.push((
            "scripted-brownout".to_string(),
            FaultPlan::scripted(vec![FaultEvent {
                at: SimTime::ZERO + SimDur::from_us(300.0),
                kind: FaultKind::Brownout {
                    factor: 4.0,
                    dur: SimDur::from_us(2_000.0),
                },
            }]),
        ));
        matrix.push((
            "scripted-daemon-restart".to_string(),
            FaultPlan::scripted(vec![FaultEvent {
                at: SimTime::ZERO + SimDur::from_us(40.0),
                kind: FaultKind::DaemonCrash {
                    node: 1,
                    downtime: SimDur::from_us(800.0),
                },
            }]),
        ));
        let outcomes = run_matrix(Workload::Coll, &matrix);
        assert_eq!(outcomes.len(), 4);
        let base = outcomes[0].finished_ps;
        for cell in &outcomes[1..] {
            assert!(
                cell.finished_ps >= base,
                "{}: faults sped a run up",
                cell.plan_name
            );
        }
    }

    #[test]
    fn coll_workload_survives_light_faults() {
        let matrix = default_matrix(2, &[9]);
        let outcomes = run_matrix(Workload::Coll, &matrix);
        assert_eq!(outcomes.len(), 4);
    }

    #[test]
    fn svc_workload_survives_brownout_and_primary_crash() {
        // The two plans the serving layer must specifically ride out:
        // a mesh-wide bandwidth brownout landing mid-traffic, and a
        // primary's daemon crashing long enough for the watchdog to
        // promote its backup — with every acked write still readable.
        let mut matrix = default_matrix(2, &[]);
        matrix.push((
            "scripted-brownout".to_string(),
            FaultPlan::scripted(vec![FaultEvent {
                at: SimTime::ZERO + SimDur::from_us(300.0),
                kind: FaultKind::Brownout {
                    factor: 4.0,
                    dur: SimDur::from_us(2_000.0),
                },
            }]),
        ));
        matrix.push((
            "scripted-primary-crash".to_string(),
            FaultPlan::scripted(vec![FaultEvent {
                at: SimTime::ZERO + SimDur::from_us(2_500.0),
                kind: FaultKind::DaemonCrash {
                    node: 1,
                    downtime: SimDur::from_us(800.0),
                },
            }]),
        ));
        let outcomes = run_matrix(Workload::Svc, &matrix);
        assert_eq!(outcomes.len(), 4);
        let crash = &outcomes[3];
        // run_matrix already asserted monotonicity and the bounded
        // delay budget (the re-replication watchdog restores the
        // replicated write path, so degraded-mode savings can no
        // longer mask the stall); the read-your-write checks inside
        // the workload did the correctness half.
        assert!(
            crash.log.contains("daemon-restart node=1"),
            "primary-crash cell must record the restart:\n{}",
            crash.log
        );
    }

    #[test]
    fn rmc_workload_survives_fetch_stall_and_light_faults() {
        // The plan the paging layer must specifically ride out: the
        // server's fetch engine stalling mid-traffic (replies held, in
        // order, never dropped), plus a generated light plan.
        let mut matrix = default_matrix(2, &[7]);
        matrix.push((
            "scripted-fetch-stall".to_string(),
            FaultPlan::scripted(vec![FaultEvent {
                at: SimTime::ZERO + SimDur::from_us(300.0),
                kind: FaultKind::FetchStall {
                    node: 1,
                    dur: SimDur::from_us(1_000.0),
                },
            }]),
        ));
        let outcomes = run_matrix(Workload::Rmc, &matrix);
        assert_eq!(outcomes.len(), 5);
        let stall = outcomes.last().unwrap();
        assert!(
            stall.finished_ps > outcomes[0].finished_ps,
            "a mid-traffic fetch stall must cost time"
        );
    }

    #[test]
    fn vmmc_cell_runs_on_torus_and_port_stall_costs_time() {
        use shrimp_mesh::Torus2D;
        let topo: TopologyRef = Arc::new(Torus2D::new(4, 2));
        let base = run_cell_on(
            Arc::clone(&topo),
            Workload::Vmmc,
            "baseline",
            &FaultPlan::empty(),
        );
        // Target the first hop of the pair's own route — derived from
        // the topology, not from grid arithmetic — and cross-check it
        // against the fabric's link enumeration.
        let (a, b) = (NodeId(0), NodeId(1));
        let hop = topo.route(a, b, 0)[0];
        assert!(
            topo.links()
                .iter()
                .any(|l| l.from == hop.router && l.port == hop.port),
            "routes must traverse enumerated links"
        );
        let plan = FaultPlan::scripted(vec![FaultEvent {
            at: SimTime::ZERO + SimDur::from_us(300.0),
            kind: FaultKind::PortStall {
                router: hop.router,
                port: hop.port,
                dur: SimDur::from_us(400.0),
            },
        }]);
        let stalled = run_cell_on(Arc::clone(&topo), Workload::Vmmc, "port-stall", &plan);
        assert!(
            stalled.finished_ps > base.finished_ps,
            "stalling the pair's own link mid-traffic must cost time \
             ({} ps vs baseline {} ps)",
            stalled.finished_ps,
            base.finished_ps
        );
        assert!(
            stalled.finished_ps <= base.finished_ps + delay_budget(&plan).as_ps(),
            "port stall must stay within the bounded-degradation budget"
        );
        assert!(stalled.log.contains("port-stall router="));
    }

    #[test]
    fn coll_cell_replays_bit_identically_on_torus() {
        use shrimp_mesh::Torus2D;
        let topo: TopologyRef = Arc::new(Torus2D::new(2, 2));
        let plan = FaultPlan::generate(11, &FaultSpec::light(2, SimDur::from_us(4_000.0)));
        let a = run_cell_on(Arc::clone(&topo), Workload::Coll, "light-11", &plan);
        let b = run_cell_on(Arc::clone(&topo), Workload::Coll, "light-11", &plan);
        assert_eq!(
            a.render(),
            b.render(),
            "the same plan on the same fabric must replay bit-identically"
        );
    }

    #[test]
    fn nx_workload_survives_light_faults() {
        let matrix: Vec<_> = default_matrix(2, &[5])
            .into_iter()
            .filter(|(name, _)| name != "heavy-5")
            .collect();
        let outcomes = run_matrix(Workload::Nx, &matrix);
        assert_eq!(outcomes.len(), 3);
    }
}
