//! Figure 4: NX latency and bandwidth.
//!
//! The same ping-pong as Figure 3, but through the NX compatibility
//! library. The five curves map onto library configurations:
//!
//! | curve     | configuration                                            |
//! |-----------|----------------------------------------------------------|
//! | AU-1copy  | automatic-update marshal, message consumed in place      |
//! | AU-2copy  | automatic-update marshal + receiver copy                 |
//! | DU-1copy  | data straight from user memory (two deliberate updates)  |
//! | DU-2copy  | marshal copy + single deliberate update                  |
//! | DU-0copy  | the zero-copy scout protocol forced for every size       |

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{ShrimpSystem, SystemConfig};
use shrimp_node::{CacheMode, CostModel};
use shrimp_nx::{NxConfig, NxWorld, SendVariant};
use shrimp_sim::{Kernel, SimTime};

use crate::report::Point;

/// The five NX protocol variants of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NxVariant {
    /// Automatic update, consumed in place (one copy total).
    Au1Copy,
    /// Automatic update plus receiver copy (two copies).
    Au2Copy,
    /// Deliberate update from user memory plus receiver copy (one copy).
    Du1Copy,
    /// Marshal copy plus one deliberate update plus receiver copy (two).
    Du2Copy,
    /// Zero-copy scout protocol for every message.
    Du0Copy,
}

impl NxVariant {
    /// Paper legend label.
    pub fn label(self) -> &'static str {
        match self {
            NxVariant::Au1Copy => "AU-1copy",
            NxVariant::Au2Copy => "AU-2copy",
            NxVariant::Du0Copy => "DU-0copy",
            NxVariant::Du1Copy => "DU-1copy",
            NxVariant::Du2Copy => "DU-2copy",
        }
    }

    /// All five, in the paper's legend order.
    pub fn all() -> [NxVariant; 5] {
        [
            NxVariant::Au1Copy,
            NxVariant::Au2Copy,
            NxVariant::Du0Copy,
            NxVariant::Du1Copy,
            NxVariant::Du2Copy,
        ]
    }

    /// The library configuration realizing this curve.
    pub fn config(self) -> NxConfig {
        let mut c = NxConfig::paper_default();
        match self {
            NxVariant::Au1Copy => {
                c.send_variant = SendVariant::AutomaticUpdate;
                c.in_place_receive = true;
            }
            NxVariant::Au2Copy => {
                c.send_variant = SendVariant::AutomaticUpdate;
            }
            NxVariant::Du1Copy => {
                c.send_variant = SendVariant::DuFromUser;
            }
            NxVariant::Du2Copy => {
                c.send_variant = SendVariant::DuMarshal;
            }
            NxVariant::Du0Copy => {
                c.large_threshold = 0;
            }
        }
        c
    }
}

const WARMUP: u32 = 2;
const ROUNDS: u32 = 8;

/// Run one NX ping-pong experiment; returns the measured point.
pub fn nx_pingpong(variant: NxVariant, size: usize, costs: CostModel) -> Point {
    let kernel = Kernel::new();
    let mut config = SystemConfig::prototype();
    config.costs = costs;
    let system = ShrimpSystem::build(&kernel, config);
    let world = NxWorld::new(Arc::clone(&system), variant.config(), vec![0, 1]);
    let result: Arc<Mutex<Option<(SimTime, SimTime)>>> = Arc::new(Mutex::new(None));

    {
        let world = Arc::clone(&world);
        let result = Arc::clone(&result);
        kernel.spawn("rank0", move |ctx| {
            let mut nx = world.join(ctx, 0);
            let sbuf = nx.vmmc().proc_().alloc(size.max(8), CacheMode::WriteBack);
            let rbuf = nx.vmmc().proc_().alloc(size.max(8), CacheMode::WriteBack);
            let fill: Vec<u8> = (0..size).map(|i| (i % 239) as u8).collect();
            nx.vmmc().proc_().poke(sbuf, &fill).unwrap();
            for _ in 0..WARMUP {
                nx.csend(ctx, 1, sbuf, size, 1).unwrap();
                nx.crecv(ctx, 2, rbuf, size.max(8)).unwrap();
            }
            let t0 = ctx.now();
            for _ in 0..ROUNDS {
                nx.csend(ctx, 1, sbuf, size, 1).unwrap();
                nx.crecv(ctx, 2, rbuf, size.max(8)).unwrap();
            }
            *result.lock() = Some((t0, ctx.now()));
            nx.flush(ctx).unwrap();
        });
    }
    {
        let world = Arc::clone(&world);
        kernel.spawn("rank1", move |ctx| {
            let mut nx = world.join(ctx, 1);
            let sbuf = nx.vmmc().proc_().alloc(size.max(8), CacheMode::WriteBack);
            let rbuf = nx.vmmc().proc_().alloc(size.max(8), CacheMode::WriteBack);
            let fill: Vec<u8> = (0..size).map(|i| (i % 239) as u8).collect();
            nx.vmmc().proc_().poke(sbuf, &fill).unwrap();
            for _ in 0..(WARMUP + ROUNDS) {
                nx.crecv(ctx, 1, rbuf, size.max(8)).unwrap();
                nx.csend(ctx, 2, sbuf, size, 0).unwrap();
            }
            nx.flush(ctx).unwrap();
        });
    }

    kernel.run_until_quiescent().expect("NX ping-pong failed");
    assert!(system.violations().is_empty());
    let (t0, t1) = result.lock().expect("rank0 never finished");
    let one_way_us = (t1 - t0).as_us() / (2.0 * ROUNDS as f64);
    Point {
        size: size.max(4),
        latency_us: one_way_us,
        bandwidth_mbs: size.max(4) as f64 / one_way_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pingpong::{vmmc_pingpong, Strategy};

    #[test]
    fn nx_small_au_overhead_near_6us_over_hardware() {
        let hw = vmmc_pingpong(Strategy::Au1Copy, 8, false, CostModel::shrimp_prototype());
        let nx = nx_pingpong(NxVariant::Au1Copy, 8, CostModel::shrimp_prototype());
        let overhead = nx.latency_us - hw.latency_us;
        assert!(
            (3.0..9.0).contains(&overhead),
            "NX AU small-message overhead {overhead:.2} us over hardware (paper: just over 6)"
        );
    }

    #[test]
    fn nx_large_bandwidth_approaches_hardware() {
        let hw = vmmc_pingpong(
            Strategy::Du0Copy,
            10240,
            false,
            CostModel::shrimp_prototype(),
        );
        let nx = nx_pingpong(NxVariant::Du0Copy, 10240, CostModel::shrimp_prototype());
        assert!(
            nx.bandwidth_mbs > 0.8 * hw.bandwidth_mbs,
            "NX zero-copy bandwidth {:.1} should approach hardware {:.1}",
            nx.bandwidth_mbs,
            hw.bandwidth_mbs
        );
    }

    #[test]
    fn variant_ordering_small_messages() {
        let au1 = nx_pingpong(NxVariant::Au1Copy, 16, CostModel::shrimp_prototype());
        let au2 = nx_pingpong(NxVariant::Au2Copy, 16, CostModel::shrimp_prototype());
        let du2 = nx_pingpong(NxVariant::Du2Copy, 16, CostModel::shrimp_prototype());
        assert!(au1.latency_us < au2.latency_us);
        assert!(au1.latency_us < du2.latency_us);
    }

    #[test]
    fn du_marshal_beats_two_updates_for_tiny_then_loses() {
        // The Figure 4 trade-off: one DU with a marshal copy wins for
        // tiny messages; two DUs win once copying costs more than the
        // extra send.
        let tiny_2copy = nx_pingpong(NxVariant::Du2Copy, 8, CostModel::shrimp_prototype());
        let tiny_1copy = nx_pingpong(NxVariant::Du1Copy, 8, CostModel::shrimp_prototype());
        assert!(tiny_2copy.latency_us < tiny_1copy.latency_us);
        let big_2copy = nx_pingpong(NxVariant::Du2Copy, 1536, CostModel::shrimp_prototype());
        let big_1copy = nx_pingpong(NxVariant::Du1Copy, 1536, CostModel::shrimp_prototype());
        assert!(big_1copy.latency_us < big_2copy.latency_us);
    }
}
