//! Table/series formatting shared by all figure harnesses.

/// One measured point of a latency/bandwidth sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Message (or argument) size in bytes.
    pub size: usize,
    /// One-way latency in microseconds (round-trip / 2), or full
    /// round-trip for RPC figures (stated per figure).
    pub latency_us: f64,
    /// Delivered bandwidth in MB/s (user bytes / time).
    pub bandwidth_mbs: f64,
}

/// A named series of points (one curve of a paper figure).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Curve label, matching the paper's legend (e.g. "DU-0copy").
    pub label: String,
    /// Measured points in size order.
    pub points: Vec<Point>,
}

impl Series {
    /// Create an empty series.
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Latency at a given size, if measured.
    pub fn latency_at(&self, size: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.size == size)
            .map(|p| p.latency_us)
    }

    /// Bandwidth at a given size, if measured.
    pub fn bandwidth_at(&self, size: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.size == size)
            .map(|p| p.bandwidth_mbs)
    }

    /// The maximum bandwidth across the sweep.
    pub fn peak_bandwidth(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.bandwidth_mbs)
            .fold(0.0, f64::max)
    }
}

/// Render a figure's series as two aligned text tables (latency for small
/// sizes, bandwidth for the full sweep), in the spirit of the paper's
/// paired graphs.
pub fn render_figure(title: &str, series: &[Series], latency_cutoff: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n\n"));

    out.push_str(&format!("{:<12}", "bytes"));
    for s in series {
        out.push_str(&format!("{:>14}", format!("{} us", s.label)));
    }
    out.push('\n');
    if let Some(first) = series.first() {
        for p in &first.points {
            if p.size > latency_cutoff {
                continue;
            }
            out.push_str(&format!("{:<12}", p.size));
            for s in series {
                match s.latency_at(p.size) {
                    Some(l) => out.push_str(&format!("{l:>14.2}")),
                    None => out.push_str(&format!("{:>14}", "-")),
                }
            }
            out.push('\n');
        }
    }

    out.push('\n');
    out.push_str(&format!("{:<12}", "bytes"));
    for s in series {
        out.push_str(&format!("{:>14}", format!("{} MB/s", s.label)));
    }
    out.push('\n');
    if let Some(first) = series.first() {
        for p in &first.points {
            out.push_str(&format!("{:<12}", p.size));
            for s in series {
                match s.bandwidth_at(p.size) {
                    Some(b) => out.push_str(&format!("{b:>14.2}")),
                    None => out.push_str(&format!("{:>14}", "-")),
                }
            }
            out.push('\n');
        }
    }
    out
}

/// The message sizes the paper's figures sweep: 4–64 bytes for the
/// latency graphs, up to 10 KB for bandwidth.
pub fn paper_sizes() -> Vec<usize> {
    let mut v: Vec<usize> = vec![4, 8, 16, 24, 32, 40, 48, 56, 64];
    v.extend([
        128, 256, 512, 1024, 2048, 3072, 4096, 5120, 6144, 7168, 8192, 9216, 10240,
    ]);
    v
}

/// Sizes for the latency-only graphs.
pub const LATENCY_CUTOFF: usize = 64;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Series {
        Series {
            label: "DU-0copy".into(),
            points: vec![
                Point {
                    size: 4,
                    latency_us: 7.6,
                    bandwidth_mbs: 0.5,
                },
                Point {
                    size: 10240,
                    latency_us: 440.0,
                    bandwidth_mbs: 23.1,
                },
            ],
        }
    }

    #[test]
    fn series_lookups() {
        let s = sample();
        assert_eq!(s.latency_at(4), Some(7.6));
        assert_eq!(s.bandwidth_at(10240), Some(23.1));
        assert_eq!(s.latency_at(99), None);
        assert!((s.peak_bandwidth() - 23.1).abs() < 1e-9);
    }

    #[test]
    fn render_contains_labels_and_values() {
        let out = render_figure("Figure 3", &[sample()], 64);
        assert!(out.contains("Figure 3"));
        assert!(out.contains("DU-0copy us"));
        assert!(out.contains("7.60"));
        assert!(out.contains("23.10"));
        // 10240 exceeds the latency cutoff: appears once (bandwidth table).
        assert_eq!(out.matches("10240").count(), 1);
    }

    #[test]
    fn paper_sizes_are_sorted_and_bounded() {
        let v = paper_sizes();
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*v.first().unwrap(), 4);
        assert_eq!(*v.last().unwrap(), 10240);
    }
}
