//! The KV serving benchmark: throughput vs. offered load, tail
//! latency, and failover measurement for `shrimp-svc`.
//!
//! Two experiments, both entirely in virtual time and therefore
//! bit-identically reproducible:
//!
//! * **Curve** — an open-loop sweep: for each offered rate a fresh
//!   mesh is built, one load engine per node drives Poisson arrivals
//!   with Zipfian keys through the sharded replicated cluster, and the
//!   merged per-request latency histogram yields p50/p95/p99/p999 plus
//!   achieved throughput. Past saturation the bounded engine queues
//!   shed arrivals and tail latency climbs — the knee the curve
//!   exists to show.
//! * **Failover** — the same load with a scripted
//!   [`FaultKind::DaemonCrash`] killing a shard primary mid-run. The
//!   harness verifies *zero lost acknowledged writes* against the
//!   authoritative post-run stores and reports the client-observed
//!   failover gap and the promotion log.
//!
//! Digests over every virtual quantity gate `BENCH_svc.json` in CI
//! (`svcbench --check`): an engine or service change that shifts any
//! latency bucket, shed count, or promotion instant fails the check.

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{ShrimpSystem, SystemConfig};
use shrimp_mesh::{Mesh2D, TopologyRef};
use shrimp_sim::{FaultEvent, FaultKind, FaultPlan, Kernel, SimDur, SimTime};
use shrimp_svc::{spawn_engine, LoadPlan, LoadStats, SvcCluster, SvcConfig};

/// Sweep shape: fabric, engines (one per node), and the offered rates.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Fabric the cluster is built over (must be in-order; the engines
    /// and shard servers are enumerated from its node list).
    pub topology: TopologyRef,
    /// Requests per engine per curve point.
    pub requests: u64,
    /// Schedule seed.
    pub seed: u64,
    /// Per-engine offered rates (ops per virtual second), one curve
    /// point each.
    pub rates: Vec<f64>,
    /// First-arrival offset — long enough for every engine's shard
    /// bindings to warm up first.
    pub warmup: SimDur,
    /// Failover cell: per-engine offered rate.
    pub failover_rate: f64,
    /// Failover cell: requests per engine (sets the run span).
    pub failover_requests: u64,
    /// Failover cell: node whose daemon the plan kills.
    pub crash_node: usize,
    /// Failover cell: crash instant.
    pub crash_at: SimDur,
    /// Failover cell: daemon downtime.
    pub downtime: SimDur,
}

impl SweepConfig {
    /// The committed configuration: a 4×4 mesh (16 shard servers, 16
    /// engines) swept from far under to far past saturation.
    pub fn paper_4x4() -> SweepConfig {
        SweepConfig {
            topology: Arc::new(Mesh2D::new(4, 4)),
            requests: 256,
            seed: 42,
            rates: vec![2_000.0, 8_000.0, 32_000.0, 128_000.0, 512_000.0],
            // Warm-up on 4×4 finishes at ~16.3 ms virtual (16 serial
            // ~1 ms binder exchanges per engine); arrivals must start
            // after it or the backlog drain pollutes every percentile.
            warmup: SimDur::from_us(20_000.0),
            // Below the ~145 kops saturation knee so the baseline run
            // carries no queueing tail and the failover gap isolates
            // the crash stall.
            failover_rate: 4_000.0,
            failover_requests: 256,
            crash_node: 1,
            crash_at: SimDur::from_us(26_000.0),
            downtime: SimDur::from_us(6_000.0),
        }
    }

    /// A small CI-sized variant on the 2×2 prototype.
    pub fn smoke() -> SweepConfig {
        SweepConfig {
            topology: Arc::new(Mesh2D::new(2, 2)),
            requests: 96,
            seed: 42,
            rates: vec![4_000.0, 256_000.0],
            // 2×2 warm-up completes at ~4.1 ms virtual.
            warmup: SimDur::from_us(6_000.0),
            failover_rate: 16_000.0,
            failover_requests: 128,
            crash_node: 1,
            crash_at: SimDur::from_us(9_000.0),
            downtime: SimDur::from_us(3_000.0),
        }
    }

    fn engines(&self) -> usize {
        self.topology.len()
    }

    /// Grid dimensions for report labels (linear fallback for fabrics
    /// without a grid layout).
    fn dims(&self) -> (usize, usize) {
        self.topology
            .grid_dims()
            .unwrap_or((self.topology.len(), 1))
    }
}

/// One measured point of the throughput-vs-offered-load curve. Every
/// field derives from virtual time, so the whole struct is
/// replay-stable.
#[derive(Debug, Clone)]
pub struct CurvePoint {
    /// Offered rate per engine (ops/s of virtual time).
    pub rate_per_engine: f64,
    /// Aggregate offered load (all engines), kops/s.
    pub offered_kops: f64,
    /// Arrivals handed to workers.
    pub issued: u64,
    /// Arrivals shed by admission control.
    pub shed: u64,
    /// Completed requests.
    pub ok: u64,
    /// Failed requests.
    pub errors: u64,
    /// Virtual span from first possible arrival to last completion,
    /// picoseconds.
    pub span_ps: u64,
    /// Achieved throughput over the span, kops/s.
    pub achieved_kops: f64,
    /// Latency percentiles (arrival to completion), picoseconds.
    pub p50_ps: u64,
    /// 95th percentile, picoseconds.
    pub p95_ps: u64,
    /// 99th percentile, picoseconds.
    pub p99_ps: u64,
    /// 99.9th percentile, picoseconds.
    pub p999_ps: u64,
    /// Mean latency, picoseconds.
    pub mean_ps: u64,
    /// Latency histogram digest (buckets + sidecars).
    pub hist_digest: u64,
}

/// The failover cell's measured outcome.
#[derive(Debug, Clone)]
pub struct FailoverOutcome {
    /// Completed requests.
    pub ok: u64,
    /// Failed requests (expected: the crashed shard's outage window).
    pub errors: u64,
    /// Acknowledged writes the engines logged.
    pub acked_writes: u64,
    /// Acked writes missing from the authoritative stores — the
    /// harness asserts this is zero.
    pub lost_acks: u64,
    /// Promotions the watchdog performed.
    pub promotions: usize,
    /// Deterministic promotion log.
    pub promotion_log: String,
    /// Closed client-observed outage windows (error → next success on
    /// the same shard). Zero when the client retry budget rides the
    /// whole failover out without surfacing an error.
    pub outages: usize,
    /// Longest request stall in the fault-free baseline at the same
    /// load, picoseconds.
    pub baseline_max_ps: u64,
    /// Longest request stall in the faulted run, picoseconds — the
    /// request that spanned the outage.
    pub max_ps: u64,
    /// The measured failover gap: the worst client-observed stall in
    /// excess of the fault-free baseline, picoseconds.
    pub gap_ps: u64,
    /// Post-run cluster state fingerprint.
    pub state_digest: u64,
    /// Latency histogram digest.
    pub hist_digest: u64,
}

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// Spawn one engine per node and run the cluster to quiescence,
/// returning the merged stats (and the cluster for post-run checks).
fn drive(
    cfg: &SweepConfig,
    plan: &LoadPlan,
    faults: &FaultPlan,
    track_acks: bool,
) -> (LoadStats, Arc<SvcCluster>) {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(
        &kernel,
        SystemConfig::with_topology(Arc::clone(&cfg.topology)),
    );
    system.apply_faults(faults);
    let nodes = system.len();
    let mut scfg = SvcConfig::chained(nodes);
    // One engine (= one client binding) per node, plus slack for
    // re-binds abandoned mid-establishment during failover.
    scfg.conns_per_shard = nodes + 4;
    let cluster = SvcCluster::spawn(&system, scfg);
    let slots: Vec<Arc<Mutex<Option<LoadStats>>>> = system
        .topology()
        .nodes()
        .map(|node| spawn_engine(&cluster, node.0, node.0 as u64, plan, track_acks))
        .collect();
    kernel
        .run_until_quiescent()
        .expect("svcbench cell must quiesce");
    let mut merged = LoadStats::default();
    for slot in &slots {
        let stats = slot.lock();
        merged.merge(stats.as_ref().expect("engine must finish"));
    }
    (merged, cluster)
}

/// Run one curve point at `rate` ops/s per engine.
pub fn run_point(cfg: &SweepConfig, rate: f64) -> CurvePoint {
    let mut plan = LoadPlan::new(cfg.seed, cfg.requests, rate);
    plan.start = cfg.warmup;
    let start_ps = plan.start.as_ps();
    let (stats, _cluster) = drive(cfg, &plan, &FaultPlan::empty(), false);
    assert_eq!(stats.errors, 0, "fault-free sweep must not error");
    let span_ps = stats
        .done_at
        .since(SimTime::ZERO)
        .as_ps()
        .saturating_sub(start_ps)
        .max(1);
    let engines = cfg.engines() as f64;
    CurvePoint {
        rate_per_engine: rate,
        offered_kops: rate * engines / 1e3,
        issued: stats.issued,
        shed: stats.shed,
        ok: stats.ok,
        errors: stats.errors,
        span_ps,
        achieved_kops: stats.ok as f64 / (span_ps as f64 / 1e12) / 1e3,
        p50_ps: stats.latency.percentile(0.50),
        p95_ps: stats.latency.percentile(0.95),
        p99_ps: stats.latency.percentile(0.99),
        p999_ps: stats.latency.percentile(0.999),
        mean_ps: stats.latency.mean(),
        hist_digest: stats.latency.digest(),
    }
}

/// Run the failover cell: the sweep's load with a scripted daemon
/// crash killing `crash_node` mid-run, against a fault-free baseline
/// of the same load for the gap measurement.
///
/// # Panics
///
/// Panics when no promotion happened, when the faulted run shows no
/// client-observed stall beyond the baseline, or when any acknowledged
/// write is missing from the authoritative stores (the zero-lost-acks
/// contract).
pub fn run_failover(cfg: &SweepConfig) -> FailoverOutcome {
    let mut plan = LoadPlan::new(cfg.seed, cfg.failover_requests, cfg.failover_rate);
    plan.start = cfg.warmup;
    let (baseline, _) = drive(cfg, &plan, &FaultPlan::empty(), false);
    assert_eq!(baseline.errors, 0, "fault-free baseline must not error");
    let faults = FaultPlan::scripted(vec![FaultEvent {
        at: SimTime::ZERO + cfg.crash_at,
        kind: FaultKind::DaemonCrash {
            node: cfg.crash_node,
            downtime: cfg.downtime,
        },
    }]);
    let (stats, cluster) = drive(cfg, &plan, &faults, true);

    let promotions = cluster.promotions();
    assert!(
        !promotions.is_empty(),
        "killing a primary's node must promote at least one shard"
    );
    // Zero lost acknowledged writes: every acked mutation is still
    // reflected in the authoritative store at >= its acked sequence
    // (retries may have re-applied it under a later sequence).
    let mut lost = 0u64;
    for (shard, seq, op) in &stats.acked {
        let store = cluster.authoritative_store(*shard);
        let guard = store.lock();
        let (eseq, val) = guard.get(op.key());
        let held = eseq >= *seq
            && (eseq > *seq
                || match op {
                    shrimp_svc::Op::Put { val: v, .. } => val == Some(v.as_slice()),
                    shrimp_svc::Op::Del { .. } => val.is_none(),
                });
        if !held {
            lost += 1;
        }
    }
    assert_eq!(lost, 0, "acknowledged writes were lost across failover");
    // The measured failover gap: the retry layer usually rides the
    // promotion out without surfacing an error, so the client-visible
    // cost shows up as the worst request stall in excess of the
    // fault-free baseline (the request that spanned the outage ate the
    // crash detection, the promotion, and the re-bind).
    let baseline_max_ps = baseline.latency.max();
    let max_ps = stats.latency.max();
    let gap_ps = max_ps.saturating_sub(baseline_max_ps);
    assert!(
        gap_ps > 0,
        "the crash must cost some client a visible stall \
         (faulted max {max_ps} ps vs baseline {baseline_max_ps} ps)"
    );
    FailoverOutcome {
        ok: stats.ok,
        errors: stats.errors,
        acked_writes: stats.acked.len() as u64,
        lost_acks: lost,
        promotions: promotions.len(),
        promotion_log: cluster.promotion_log(),
        outages: stats.outages.len(),
        baseline_max_ps,
        max_ps,
        gap_ps,
        state_digest: cluster.state_digest(),
        hist_digest: stats.latency.digest(),
    }
}

/// The full run: every curve point plus the failover cell.
pub fn run_sweep(cfg: &SweepConfig) -> (Vec<CurvePoint>, FailoverOutcome) {
    let curve: Vec<CurvePoint> = cfg.rates.iter().map(|&r| run_point(cfg, r)).collect();
    let failover = run_failover(cfg);
    (curve, failover)
}

/// Replay-stable digest over the curve's virtual quantities.
pub fn curve_digest(curve: &[CurvePoint]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for p in curve {
        fnv(&mut h, &p.rate_per_engine.to_bits().to_le_bytes());
        for v in [p.issued, p.shed, p.ok, p.errors, p.span_ps, p.hist_digest] {
            fnv(&mut h, &v.to_le_bytes());
        }
    }
    h
}

/// Replay-stable digest over the failover cell.
pub fn failover_digest(f: &FailoverOutcome) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in [
        f.ok,
        f.errors,
        f.acked_writes,
        f.lost_acks,
        f.promotions as u64,
        f.outages as u64,
        f.baseline_max_ps,
        f.max_ps,
        f.gap_ps,
        f.state_digest,
        f.hist_digest,
    ] {
        fnv(&mut h, &v.to_le_bytes());
    }
    fnv(&mut h, f.promotion_log.as_bytes());
    h
}

fn us(ps: u64) -> f64 {
    ps as f64 / 1e6
}

/// Render the committed `results/svc_curve.txt` (byte-identical across
/// replays).
pub fn render_curve(cfg: &SweepConfig, curve: &[CurvePoint], failover: &FailoverOutcome) -> String {
    let (width, height) = cfg.dims();
    let mut out = format!(
        "svc serving curve mesh={}x{} engines={} requests/engine={} seed={}\n\
         {:>12} {:>10} {:>8} {:>6} {:>10} {:>9} {:>9} {:>9} {:>9}\n",
        width,
        height,
        cfg.engines(),
        cfg.requests,
        cfg.seed,
        "offered_kops",
        "achieved",
        "issued",
        "shed",
        "p50_us",
        "p95_us",
        "p99_us",
        "p999_us",
        "mean_us",
    );
    for p in curve {
        out.push_str(&format!(
            "{:>12.1} {:>10.1} {:>8} {:>6} {:>10.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}\n",
            p.offered_kops,
            p.achieved_kops,
            p.issued,
            p.shed,
            us(p.p50_ps),
            us(p.p95_ps),
            us(p.p99_ps),
            us(p.p999_ps),
            us(p.mean_ps),
        ));
    }
    out.push_str(&format!(
        "failover crash_node={} at_us={:.0} downtime_us={:.0}: ok={} errors={} \
         acked_writes={} lost_acks={} promotions={} max_stall_us={:.2} \
         baseline_max_us={:.2} gap_us={:.2}\n",
        cfg.crash_node,
        us(cfg.crash_at.as_ps()),
        us(cfg.downtime.as_ps()),
        failover.ok,
        failover.errors,
        failover.acked_writes,
        failover.lost_acks,
        failover.promotions,
        us(failover.max_ps),
        us(failover.baseline_max_ps),
        us(failover.gap_ps),
    ));
    for line in failover.promotion_log.lines() {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Render the committed `BENCH_svc.json`.
pub fn render_json(cfg: &SweepConfig, curve: &[CurvePoint], failover: &FailoverOutcome) -> String {
    let (width, height) = cfg.dims();
    let mut out = String::from("{\n");
    out.push_str("  \"comment\": [\n");
    out.push_str("    \"Throughput-vs-offered-load and failover measurement for the\",\n");
    out.push_str("    \"shrimp-svc sharded replicated KV service, generated by\",\n");
    out.push_str("    \"`cargo run --release -p shrimp-bench --bin svcbench`. All\",\n");
    out.push_str("    \"quantities are virtual-time and deterministic: regenerating on\",\n");
    out.push_str("    \"any host must reproduce this file byte-identically. CI's\",\n");
    out.push_str("    \"svc-smoke job re-runs the sweep and compares the digests.\"\n");
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"config\": {{\"mesh\": \"{}x{}\", \"engines\": {}, \"requests_per_engine\": {}, \
         \"seed\": {}}},\n",
        width,
        height,
        cfg.engines(),
        cfg.requests,
        cfg.seed
    ));
    out.push_str("  \"curve\": [\n");
    for (i, p) in curve.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rate_per_engine\": {:.0}, \"offered_kops\": {:.1}, \"issued\": {}, \
             \"shed\": {}, \"ok\": {}, \"errors\": {}, \"achieved_kops\": {:.1}, \
             \"p50_us\": {:.2}, \"p95_us\": {:.2}, \"p99_us\": {:.2}, \"p999_us\": {:.2}, \
             \"mean_us\": {:.2}, \"hist_digest\": \"{:016x}\"}}{}\n",
            p.rate_per_engine,
            p.offered_kops,
            p.issued,
            p.shed,
            p.ok,
            p.errors,
            p.achieved_kops,
            us(p.p50_ps),
            us(p.p95_ps),
            us(p.p99_ps),
            us(p.p999_ps),
            us(p.mean_ps),
            p.hist_digest,
            if i + 1 == curve.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"failover\": {{\"crash_node\": {}, \"crash_at_us\": {:.0}, \"downtime_us\": {:.0}, \
         \"ok\": {}, \"errors\": {}, \"acked_writes\": {}, \"lost_acks\": {}, \
         \"promotions\": {}, \"outages\": {}, \"max_stall_us\": {:.2}, \
         \"baseline_max_us\": {:.2}, \"gap_us\": {:.2}, \
         \"promotion_log\": \"{}\", \"state_digest\": \"{:016x}\"}},\n",
        cfg.crash_node,
        us(cfg.crash_at.as_ps()),
        us(cfg.downtime.as_ps()),
        failover.ok,
        failover.errors,
        failover.acked_writes,
        failover.lost_acks,
        failover.promotions,
        failover.outages,
        us(failover.max_ps),
        us(failover.baseline_max_ps),
        us(failover.gap_ps),
        failover.promotion_log.trim_end().replace('\n', "; "),
        failover.state_digest,
    ));
    out.push_str(&format!(
        "  \"curve_digest\": \"{:016x}\",\n  \"failover_digest\": \"{:016x}\"\n}}\n",
        curve_digest(curve),
        failover_digest(failover),
    ));
    out
}

/// Extract a `"<field>": "<16 hex>"` digest from a committed
/// `BENCH_svc.json`.
pub fn committed_digest(json: &str, field: &str) -> Option<u64> {
    let at = json.find(&format!("\"{field}\""))?;
    let tail = &json[at..];
    let q1 = tail.find(": \"")? + 3;
    let hex = tail.get(q1..q1 + 16)?;
    u64::from_str_radix(hex, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_curve_saturates_and_replays() {
        let cfg = SweepConfig::smoke();
        let under = run_point(&cfg, cfg.rates[0]);
        let over = run_point(&cfg, *cfg.rates.last().unwrap());
        assert_eq!(under.shed, 0, "under offered load nothing is shed");
        assert!(
            over.shed > 0,
            "past saturation admission control must shed ({} issued)",
            over.issued
        );
        assert!(
            over.p99_ps > under.p99_ps,
            "tail latency must climb past the knee"
        );
        assert!(
            over.achieved_kops < over.offered_kops / 2.0,
            "achieved throughput must fall well short of offered past saturation"
        );
        let replay = run_point(&cfg, cfg.rates[0]);
        assert_eq!(under.hist_digest, replay.hist_digest);
        assert_eq!(curve_digest(&[under]), curve_digest(&[replay]));
    }

    #[test]
    fn smoke_failover_loses_nothing() {
        let cfg = SweepConfig::smoke();
        let f = run_failover(&cfg);
        assert_eq!(f.lost_acks, 0);
        assert!(f.promotions >= 1);
        assert!(f.gap_ps > 0);
        assert!(f.promotion_log.contains("promote shard="));
    }

    #[test]
    fn digest_extraction_roundtrips() {
        let cfg = SweepConfig::smoke();
        let curve = vec![run_point(&cfg, cfg.rates[0])];
        let f = run_failover(&cfg);
        let json = render_json(&cfg, &curve, &f);
        assert_eq!(
            committed_digest(&json, "curve_digest"),
            Some(curve_digest(&curve))
        );
        assert_eq!(
            committed_digest(&json, "failover_digest"),
            Some(failover_digest(&f))
        );
    }
}
