//! Scaling studies on the planned 16-node machine (paper §8): how the
//! collectives and the mesh behave beyond the 4-node prototype.

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{ShrimpSystem, SystemConfig};
use shrimp_mesh::{Mesh2D, TopologyRef};
use shrimp_node::CacheMode;
use shrimp_nx::{NxConfig, NxWorld};
use shrimp_sim::Kernel;

fn build(topo: TopologyRef) -> (Kernel, Arc<ShrimpSystem>, Arc<NxWorld>) {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::with_topology(topo));
    // One rank per fabric node, in enumeration order.
    let nodes: Vec<usize> = system.topology().nodes().map(|n| n.0).collect();
    let world = NxWorld::new(Arc::clone(&system), NxConfig::paper_default(), nodes);
    (kernel, system, world)
}

/// Barrier (`gsync`) latency averaged over `rounds`, in microseconds.
pub fn barrier_latency(width: usize, height: usize, rounds: u32) -> f64 {
    let (kernel, system, world) = build(Arc::new(Mesh2D::new(width, height)));
    let n = system.len();
    let out: Arc<Mutex<f64>> = Arc::new(Mutex::new(0.0));
    for rank in 0..n {
        let world = Arc::clone(&world);
        let out = Arc::clone(&out);
        kernel.spawn(format!("rank{rank}"), move |ctx| {
            let mut nx = world.join(ctx, rank);
            nx.gsync(ctx).unwrap(); // warm-up
            let t0 = ctx.now();
            for _ in 0..rounds {
                nx.gsync(ctx).unwrap();
            }
            if rank == 0 {
                *out.lock() = (ctx.now() - t0).as_us() / rounds as f64;
            }
            nx.flush(ctx).unwrap();
        });
    }
    kernel.run_until_quiescent().expect("barrier bench failed");
    assert!(system.violations().is_empty());
    let v = *out.lock();
    v
}

/// Broadcast completion time (root's send start to the last rank's
/// arrival) for `bytes`, tree vs naive, in microseconds.
pub fn bcast_completion(width: usize, height: usize, bytes: usize, tree: bool) -> f64 {
    let (kernel, system, world) = build(Arc::new(Mesh2D::new(width, height)));
    let n = system.len();
    let finish: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let start: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
    for rank in 0..n {
        let world = Arc::clone(&world);
        let finish = Arc::clone(&finish);
        let start = Arc::clone(&start);
        kernel.spawn(format!("rank{rank}"), move |ctx| {
            let mut nx = world.join(ctx, rank);
            let buf = nx.vmmc().proc_().alloc(bytes.max(4), CacheMode::WriteBack);
            nx.gsync(ctx).unwrap();
            if rank == 0 {
                *start.lock() = ctx.now().as_ps();
            }
            if tree {
                nx.gbcast(ctx, 0, buf, bytes).unwrap();
            } else {
                nx.gbcast_naive(ctx, 0, buf, bytes).unwrap();
            }
            finish.lock().push(ctx.now().as_ps());
            nx.gsync(ctx).unwrap();
            nx.flush(ctx).unwrap();
        });
    }
    kernel.run_until_quiescent().expect("bcast bench failed");
    assert!(system.violations().is_empty());
    let t0 = *start.lock();
    let t1 = *finish.lock().iter().max().expect("ranks finished");
    (t1 - t0) as f64 / 1e6
}

/// Aggregate delivered bandwidth (MB/s) of a simultaneous ring shift —
/// every rank streams `bytes` to its +1 neighbor — stressing mesh links
/// under load.
pub fn ring_aggregate_bandwidth(width: usize, height: usize, bytes: usize) -> f64 {
    let (kernel, system, world) = build(Arc::new(Mesh2D::new(width, height)));
    let n = system.len();
    let finish: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let start: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
    for rank in 0..n {
        let world = Arc::clone(&world);
        let finish = Arc::clone(&finish);
        let start = Arc::clone(&start);
        kernel.spawn(format!("rank{rank}"), move |ctx| {
            let mut nx = world.join(ctx, rank);
            let buf = nx.vmmc().proc_().alloc(bytes.max(8), CacheMode::WriteBack);
            nx.gsync(ctx).unwrap();
            if rank == 0 {
                *start.lock() = ctx.now().as_ps();
            }
            let (to, _from) = ((rank + 1) % n, (rank + n - 1) % n);
            // Even ranks send first; odd receive first.
            if rank % 2 == 0 {
                nx.csend(ctx, 1, buf, bytes, to).unwrap();
                nx.crecv(ctx, 1, buf, bytes.max(8)).unwrap();
            } else {
                nx.crecv(ctx, 1, buf, bytes.max(8)).unwrap();
                nx.csend(ctx, 1, buf, bytes, to).unwrap();
            }
            finish.lock().push(ctx.now().as_ps());
            nx.gsync(ctx).unwrap();
            nx.flush(ctx).unwrap();
        });
    }
    kernel.run_until_quiescent().expect("ring bench failed");
    assert!(system.violations().is_empty());
    let t0 = *start.lock();
    let t1 = *finish.lock().iter().max().expect("ranks finished");
    let dt_us = (t1 - t0) as f64 / 1e6;
    (n * bytes) as f64 / dt_us
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_grows_logarithmically_not_linearly() {
        let b4 = barrier_latency(2, 2, 4);
        let b16 = barrier_latency(4, 4, 4);
        // 4 -> 16 ranks: dissemination rounds go 2 -> 4; the cost should
        // roughly double, nowhere near the 4x of a linear barrier.
        let ratio = b16 / b4;
        assert!(
            (1.3..3.2).contains(&ratio),
            "barrier 4n {b4:.1} us -> 16n {b16:.1} us (x{ratio:.2})"
        );
    }

    #[test]
    fn aggregate_ring_bandwidth_scales_with_node_count() {
        let bw4 = ring_aggregate_bandwidth(2, 2, 10240);
        let bw16 = ring_aggregate_bandwidth(4, 4, 10240);
        assert!(
            bw16 > 2.5 * bw4,
            "aggregate bandwidth should scale: 4n {bw4:.0} MB/s vs 16n {bw16:.0} MB/s"
        );
    }

    #[test]
    fn tree_bcast_completes_faster_than_naive_at_16() {
        let tree = bcast_completion(4, 4, 2048, true);
        let naive = bcast_completion(4, 4, 2048, false);
        assert!(tree < naive, "tree {tree:.0} us vs naive {naive:.0} us");
    }
}
