//! The chaos-soaked SLO soak harness for `shrimp-svc`.
//!
//! Where `svcbench` measures the healthy serving curve and a single
//! failover, the soak composes the open-loop load engine with the
//! *full* self-healing surface at once:
//!
//! * a **brownout** dilating every mesh link mid-run,
//! * a **DMA stall** pinning one primary's incoming ring (exercises
//!   hedged reads against the still-healthy backup replica and tiered
//!   admission shedding as the stalled shard's backlog builds),
//! * a **primary crash** (exercises promotion and the watchdog's
//!   automatic re-replication of the promoted shard),
//! * scripted **live migrations** injected as [`FaultKind::Directive`]
//!   events (exercises the planned snapshot → drain → epoch-bump
//!   handoff while the shard is under load).
//!
//! A fault-free baseline of the same load runs first so the soak can
//! state its service-level objective in relative terms, and the soaked
//! run is asserted against absolute bounds: **zero lost acknowledged
//! writes**, p999 latency under the configured SLO, and a bounded shed
//! fraction. Everything is virtual-time and deterministic — the
//! committed `BENCH_svcsoak.json` digest is a bit-for-bit replay gate
//! (`svcsoak --check`), and the obs recorder rides along so the
//! service-layer span count is part of the fingerprint.

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{ShrimpSystem, SystemConfig};
use shrimp_mesh::{Mesh2D, TopologyRef};
use shrimp_obs::{Layer, Recorder};
use shrimp_sim::{FaultEvent, FaultKind, FaultPlan, Kernel, SimDur, SimTime};
use shrimp_svc::{spawn_engine, ClusterEvent, LoadPlan, LoadStats, SvcCluster, SvcConfig};

/// Soak shape: mesh, engines, load mix, the fault matrix, and the SLO
/// the soaked run must hold.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Fabric the cluster is built over (must be in-order; engines are
    /// spread over its enumerated node list).
    pub topology: TopologyRef,
    /// Number of load engines (spread across the nodes).
    pub engines: usize,
    /// Requests per engine.
    pub requests: u64,
    /// Schedule seed.
    pub seed: u64,
    /// Offered rate per engine (ops per virtual second).
    pub rate: f64,
    /// First-arrival offset (bindings and replication warm up first).
    pub warmup: SimDur,
    /// Fraction of requests that are multi-key scans.
    pub scan_fraction: f64,
    /// Keys per scan.
    pub scan_len: u32,
    /// Admission-control queue limit (the tiers shed scans at half of
    /// this, writes at three quarters, reads at the full limit).
    pub queue_limit: usize,
    /// How long a read waits on the primary before hedging to the
    /// backup replica (the soak hedges more aggressively than the
    /// service default so the brownout exercises the path).
    pub hedge_after: SimDur,
    /// Brownout start.
    pub brownout_at: SimDur,
    /// Brownout latency dilation factor.
    pub brownout_factor: f64,
    /// Brownout duration.
    pub brownout_dur: SimDur,
    /// Node whose incoming DMA the plan stalls (a shard primary whose
    /// backup stays healthy — the hedged-read scenario).
    pub stall_node: usize,
    /// Stall start.
    pub stall_at: SimDur,
    /// Stall duration.
    pub stall_dur: SimDur,
    /// Node whose daemon the plan crashes (a shard primary).
    pub crash_node: usize,
    /// Crash instant.
    pub crash_at: SimDur,
    /// Daemon downtime.
    pub downtime: SimDur,
    /// Scripted live migrations: `(at, shard, destination node)`.
    pub migrations: Vec<(SimDur, usize, usize)>,
    /// SLO: the soaked run's p999 arrival-to-completion latency must
    /// stay under this.
    pub slo_p999: SimDur,
    /// SLO: soaked `shed / (issued + shed)` must stay under this.
    pub max_shed_fraction: f64,
}

impl SoakConfig {
    /// The committed configuration: a 4×4 mesh under a brownout, a
    /// primary crash, and two live migrations.
    pub fn paper_4x4() -> SoakConfig {
        SoakConfig {
            topology: Arc::new(Mesh2D::new(4, 4)),
            engines: 16,
            requests: 224,
            seed: 7,
            rate: 4_000.0,
            // 4×4 warm-up (16 serial binder exchanges per engine)
            // finishes at ~16.3 ms virtual.
            warmup: SimDur::from_us(20_000.0),
            scan_fraction: 0.08,
            scan_len: 6,
            queue_limit: 10,
            hedge_after: SimDur::from_us(100.0),
            brownout_at: SimDur::from_us(24_000.0),
            brownout_factor: 4.0,
            brownout_dur: SimDur::from_us(5_000.0),
            stall_node: 0,
            stall_at: SimDur::from_us(25_000.0),
            stall_dur: SimDur::from_us(3_000.0),
            crash_node: 1,
            crash_at: SimDur::from_us(32_000.0),
            downtime: SimDur::from_us(6_000.0),
            migrations: vec![
                (SimDur::from_us(29_000.0), 0, 2),
                (SimDur::from_us(42_000.0), 5, 9),
            ],
            slo_p999: SimDur::from_us(10_000.0),
            max_shed_fraction: 0.20,
        }
    }

    /// A small CI-sized variant on the 2×2 prototype: two engines, one
    /// migration, the same brownout + crash composition.
    pub fn smoke() -> SoakConfig {
        SoakConfig {
            topology: Arc::new(Mesh2D::new(2, 2)),
            engines: 2,
            requests: 160,
            seed: 7,
            rate: 12_000.0,
            // 2×2 warm-up completes at ~4.1 ms virtual.
            warmup: SimDur::from_us(6_000.0),
            scan_fraction: 0.10,
            scan_len: 4,
            queue_limit: 16,
            hedge_after: SimDur::from_us(100.0),
            brownout_at: SimDur::from_us(7_500.0),
            brownout_factor: 4.0,
            brownout_dur: SimDur::from_us(2_000.0),
            stall_node: 0,
            stall_at: SimDur::from_us(8_000.0),
            stall_dur: SimDur::from_us(1_200.0),
            crash_node: 1,
            crash_at: SimDur::from_us(12_000.0),
            downtime: SimDur::from_us(2_500.0),
            migrations: vec![(SimDur::from_us(9_700.0), 0, 2)],
            slo_p999: SimDur::from_us(9_000.0),
            max_shed_fraction: 0.20,
        }
    }

    /// Grid dimensions for report labels (linear fallback for fabrics
    /// without a grid layout).
    fn dims(&self) -> (usize, usize) {
        self.topology
            .grid_dims()
            .unwrap_or((self.topology.len(), 1))
    }

    /// The soaked run's scripted fault plan, time-sorted.
    pub fn fault_plan(&self) -> FaultPlan {
        let mut events = vec![
            FaultEvent {
                at: SimTime::ZERO + self.brownout_at,
                kind: FaultKind::Brownout {
                    factor: self.brownout_factor,
                    dur: self.brownout_dur,
                },
            },
            FaultEvent {
                at: SimTime::ZERO + self.stall_at,
                kind: FaultKind::DmaStall {
                    node: self.stall_node,
                    dur: self.stall_dur,
                },
            },
            FaultEvent {
                at: SimTime::ZERO + self.crash_at,
                kind: FaultKind::DaemonCrash {
                    node: self.crash_node,
                    downtime: self.downtime,
                },
            },
        ];
        for &(at, shard, to) in &self.migrations {
            events.push(FaultEvent {
                at: SimTime::ZERO + at,
                kind: FaultKind::Directive {
                    op: "migrate",
                    a: shard as u64,
                    b: to as u64,
                },
            });
        }
        events.sort_by_key(|e| e.at);
        FaultPlan::scripted(events)
    }
}

/// One run's measured quantities (baseline or soaked). All virtual, so
/// replay-stable.
#[derive(Debug, Clone, Default)]
pub struct SoakRun {
    /// Arrivals handed to workers.
    pub issued: u64,
    /// Arrivals shed by admission control (all classes).
    pub shed: u64,
    /// Scans shed (tier 1: half the queue limit).
    pub shed_scans: u64,
    /// Writes shed (tier 2: three quarters of the limit).
    pub shed_writes: u64,
    /// Reads shed (tier 3: the full limit).
    pub shed_reads: u64,
    /// Completed requests.
    pub ok: u64,
    /// Failed requests.
    pub errors: u64,
    /// Reads the client hedged to the backup replica.
    pub hedges: u64,
    /// Hedged reads the backup answered.
    pub hedge_wins: u64,
    /// Median latency, picoseconds.
    pub p50_ps: u64,
    /// 99th percentile latency, picoseconds.
    pub p99_ps: u64,
    /// 99.9th percentile latency, picoseconds.
    pub p999_ps: u64,
    /// Worst request stall, picoseconds.
    pub max_ps: u64,
    /// Latency histogram digest.
    pub hist_digest: u64,
    /// Service-layer obs spans the run recorded.
    pub service_spans: u64,
}

impl SoakRun {
    fn from_stats(stats: &LoadStats, service_spans: u64) -> SoakRun {
        SoakRun {
            issued: stats.issued,
            shed: stats.shed,
            shed_scans: stats.shed_scans,
            shed_writes: stats.shed_writes,
            shed_reads: stats.shed_reads,
            ok: stats.ok,
            errors: stats.errors,
            hedges: stats.hedges,
            hedge_wins: stats.hedge_wins,
            p50_ps: stats.latency.percentile(0.50),
            p99_ps: stats.latency.percentile(0.99),
            p999_ps: stats.latency.percentile(0.999),
            max_ps: stats.latency.max(),
            hist_digest: stats.latency.digest(),
            service_spans,
        }
    }

    /// `shed / (issued + shed)`.
    pub fn shed_fraction(&self) -> f64 {
        let offered = self.issued + self.shed;
        if offered == 0 {
            0.0
        } else {
            self.shed as f64 / offered as f64
        }
    }
}

/// The soak's full outcome: both runs plus the self-healing audit.
#[derive(Debug, Clone)]
pub struct SoakOutcome {
    /// The fault-free run of the same load.
    pub baseline: SoakRun,
    /// The run under the fault matrix.
    pub soaked: SoakRun,
    /// Acknowledged writes the engines logged during the soaked run.
    pub acked_writes: u64,
    /// Acked writes missing from the authoritative stores — asserted
    /// zero.
    pub lost_acks: u64,
    /// Promotions the watchdog performed.
    pub promotions: u64,
    /// Completed live migrations.
    pub migrated: u64,
    /// Re-replications (a promoted or migrated shard regaining its
    /// backup).
    pub rearmed: u64,
    /// Deterministic cluster event log of the soaked run.
    pub event_log: String,
    /// Post-soak cluster state fingerprint.
    pub state_digest: u64,
}

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// Replay-stable digest over the whole soak (both runs, the healing
/// audit, and the event log).
pub fn soak_digest(o: &SoakOutcome) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for run in [&o.baseline, &o.soaked] {
        for v in [
            run.issued,
            run.shed,
            run.shed_scans,
            run.shed_writes,
            run.shed_reads,
            run.ok,
            run.errors,
            run.hedges,
            run.hedge_wins,
            run.p50_ps,
            run.p99_ps,
            run.p999_ps,
            run.max_ps,
            run.hist_digest,
            run.service_spans,
        ] {
            fnv(&mut h, &v.to_le_bytes());
        }
    }
    for v in [
        o.acked_writes,
        o.lost_acks,
        o.promotions,
        o.migrated,
        o.rearmed,
        o.state_digest,
    ] {
        fnv(&mut h, &v.to_le_bytes());
    }
    fnv(&mut h, o.event_log.as_bytes());
    h
}

/// Build a mesh, spawn the cluster and `cfg.engines` load engines
/// (spread evenly across the nodes), run to quiescence under an obs
/// recorder, and return the merged stats plus the cluster and the
/// service-layer span count.
fn drive(
    cfg: &SoakConfig,
    plan: &LoadPlan,
    faults: &FaultPlan,
    track_acks: bool,
) -> (LoadStats, Arc<SvcCluster>, u64) {
    let rec = Recorder::new();
    let _guard = rec.install();
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(
        &kernel,
        SystemConfig::with_topology(Arc::clone(&cfg.topology)),
    );
    system.apply_faults(faults);
    let nodes = system.len();
    let mut scfg = SvcConfig::chained(nodes);
    // Slack for binds abandoned mid-establishment across epoch bumps
    // (each migration and promotion forces every engine to re-bind).
    scfg.conns_per_shard = nodes + 4;
    scfg.hedge_reads = true;
    scfg.hedge_after = cfg.hedge_after;
    let cluster = SvcCluster::spawn(&system, scfg);
    // Engines spread evenly over the fabric's enumerated node list.
    let all: Vec<usize> = system.topology().nodes().map(|n| n.0).collect();
    let step = (all.len() / cfg.engines.max(1)).max(1);
    let slots: Vec<Arc<Mutex<Option<LoadStats>>>> = (0..cfg.engines)
        .map(|e| {
            let home = all[(e * step) % all.len()];
            spawn_engine(&cluster, home, e as u64, plan, track_acks)
        })
        .collect();
    kernel
        .run_until_quiescent()
        .expect("soak cell must quiesce");
    let mut merged = LoadStats::default();
    for slot in &slots {
        let stats = slot.lock();
        merged.merge(stats.as_ref().expect("engine must finish"));
    }
    let service_spans = rec
        .spans()
        .iter()
        .filter(|s| s.layer == Layer::Service)
        .count() as u64;
    (merged, cluster, service_spans)
}

fn load_plan(cfg: &SoakConfig) -> LoadPlan {
    let mut plan = LoadPlan::new(cfg.seed, cfg.requests, cfg.rate);
    plan.start = cfg.warmup;
    plan.scan_fraction = cfg.scan_fraction;
    plan.scan_len = cfg.scan_len;
    plan.queue_limit = cfg.queue_limit;
    plan
}

/// Run the soak: fault-free baseline, then the soaked run under the
/// composed fault matrix, then the self-healing audit.
///
/// # Panics
///
/// Panics when any acknowledged write is missing from the
/// authoritative stores, when the event log lacks the promote /
/// migrate / rearm traversal the plan scripts, when the soaked p999
/// exceeds `cfg.slo_p999`, or when the shed fraction exceeds
/// `cfg.max_shed_fraction`.
pub fn run_soak(cfg: &SoakConfig) -> SoakOutcome {
    let plan = load_plan(cfg);
    let (base, _, base_spans) = drive(cfg, &plan, &FaultPlan::empty(), false);
    assert_eq!(base.errors, 0, "fault-free soak baseline must not error");

    let (stats, cluster, spans) = drive(cfg, &plan, &cfg.fault_plan(), true);

    // Zero lost acknowledged writes across the brownout, the crash
    // promotion, the re-replications, and every live migration: each
    // acked mutation must still be reflected in the authoritative
    // store at >= its acked sequence (retries may have re-applied it
    // under a later sequence).
    let mut lost = 0u64;
    for (shard, seq, op) in &stats.acked {
        let store = cluster.authoritative_store(*shard);
        let guard = store.lock();
        let (eseq, val) = guard.get(op.key());
        let held = eseq >= *seq
            && (eseq > *seq
                || match op {
                    shrimp_svc::Op::Put { val: v, .. } => val == Some(v.as_slice()),
                    shrimp_svc::Op::Del { .. } => val.is_none(),
                });
        if !held {
            lost += 1;
        }
    }
    assert_eq!(lost, 0, "acknowledged writes were lost during the soak");

    let events = cluster.events();
    let count = |f: fn(&ClusterEvent) -> bool| events.iter().filter(|e| f(e)).count() as u64;
    let promotions = count(|e| matches!(e, ClusterEvent::Promoted(_)));
    let migrated = count(|e| matches!(e, ClusterEvent::Migrated { .. }));
    let rearmed = count(|e| matches!(e, ClusterEvent::Rearmed { .. }));
    assert!(
        promotions >= 1,
        "crashing a primary's node must promote at least one shard"
    );
    assert_eq!(
        migrated,
        cfg.migrations.len() as u64,
        "every scripted migration must complete"
    );
    assert!(
        rearmed >= promotions + migrated,
        "every promoted and migrated shard must regain a backup \
         (rearmed={rearmed} promotions={promotions} migrated={migrated})"
    );

    let outcome = SoakOutcome {
        baseline: SoakRun::from_stats(&base, base_spans),
        soaked: SoakRun::from_stats(&stats, spans),
        acked_writes: stats.acked.len() as u64,
        lost_acks: lost,
        promotions,
        migrated,
        rearmed,
        event_log: cluster.event_log(),
        state_digest: cluster.state_digest(),
    };

    // The soak must actually exercise the resilience surface it
    // audits: the stalled primary has to push some read past the
    // hedge trigger and some backlog past the shedding tiers.
    assert!(
        outcome.soaked.hedges >= 1,
        "the stalled primary must drive at least one hedged read"
    );
    assert!(
        outcome.soaked.shed >= 1,
        "the stalled primary must drive tiered admission shedding"
    );
    // The SLO: tail latency bounded even under the composed fault
    // matrix, and tiered admission control sheds at a bounded rate.
    assert!(
        outcome.soaked.p999_ps <= cfg.slo_p999.as_ps(),
        "soaked p999 {} ps over the {} ps SLO",
        outcome.soaked.p999_ps,
        cfg.slo_p999.as_ps()
    );
    assert!(
        outcome.soaked.shed_fraction() <= cfg.max_shed_fraction,
        "soaked shed fraction {:.4} over the {:.4} bound",
        outcome.soaked.shed_fraction(),
        cfg.max_shed_fraction
    );
    outcome
}

fn us(ps: u64) -> f64 {
    ps as f64 / 1e6
}

/// Render the committed `results/svc_soak.txt` (byte-identical across
/// replays).
pub fn render_report(cfg: &SoakConfig, o: &SoakOutcome) -> String {
    let (width, height) = cfg.dims();
    let mut out = format!(
        "svc chaos soak mesh={}x{} engines={} requests/engine={} rate/engine={:.0} seed={}\n\
         faults: brownout x{:.1} at_us={:.0} dur_us={:.0}; dma-stall node={} at_us={:.0} \
         dur_us={:.0}; crash node={} at_us={:.0} downtime_us={:.0}; migrations={}\n",
        width,
        height,
        cfg.engines,
        cfg.requests,
        cfg.rate,
        cfg.seed,
        cfg.brownout_factor,
        us(cfg.brownout_at.as_ps()),
        us(cfg.brownout_dur.as_ps()),
        cfg.stall_node,
        us(cfg.stall_at.as_ps()),
        us(cfg.stall_dur.as_ps()),
        cfg.crash_node,
        us(cfg.crash_at.as_ps()),
        us(cfg.downtime.as_ps()),
        cfg.migrations
            .iter()
            .map(|(at, s, to)| format!("shard{}->node{}@{:.0}us", s, to, us(at.as_ps())))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push_str(&format!(
        "{:>10} {:>8} {:>6} {:>6} {:>6} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9}\n",
        "run",
        "issued",
        "shed",
        "ok",
        "errors",
        "hedges",
        "wins",
        "p50_us",
        "p99_us",
        "p999_us",
        "max_us",
    ));
    for (name, run) in [("baseline", &o.baseline), ("soaked", &o.soaked)] {
        out.push_str(&format!(
            "{:>10} {:>8} {:>6} {:>6} {:>6} {:>8} {:>8} {:>8.2} {:>9.2} {:>9.2} {:>9.2}\n",
            name,
            run.issued,
            run.shed,
            run.ok,
            run.errors,
            run.hedges,
            run.hedge_wins,
            us(run.p50_ps),
            us(run.p99_ps),
            us(run.p999_ps),
            us(run.max_ps),
        ));
    }
    out.push_str(&format!(
        "shed tiers (soaked): scans={} writes={} reads={} fraction={:.4} (bound {:.4})\n",
        o.soaked.shed_scans,
        o.soaked.shed_writes,
        o.soaked.shed_reads,
        o.soaked.shed_fraction(),
        cfg.max_shed_fraction,
    ));
    out.push_str(&format!(
        "slo: p999 {:.2} us <= {:.2} us; acked_writes={} lost_acks={} promotions={} \
         migrated={} rearmed={} service_spans={}\n",
        us(o.soaked.p999_ps),
        us(cfg.slo_p999.as_ps()),
        o.acked_writes,
        o.lost_acks,
        o.promotions,
        o.migrated,
        o.rearmed,
        o.soaked.service_spans,
    ));
    for line in o.event_log.lines() {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Render the committed `BENCH_svcsoak.json` from the full soak's
/// outcome plus the smoke configuration's digest (CI's soak job runs
/// the cheap smoke soak and gates on `smoke_digest`; regenerating the
/// file requires both runs).
pub fn render_json(cfg: &SoakConfig, o: &SoakOutcome, smoke_digest: u64) -> String {
    let (width, height) = cfg.dims();
    let mut out = String::from("{\n");
    out.push_str("  \"comment\": [\n");
    out.push_str("    \"Chaos-soaked SLO soak for the shrimp-svc self-healing serving\",\n");
    out.push_str("    \"stack (brownout + primary crash + live migrations under load),\",\n");
    out.push_str("    \"generated by `cargo run --release -p shrimp-bench --bin svcsoak`.\",\n");
    out.push_str("    \"All quantities are virtual-time and deterministic: regenerating\",\n");
    out.push_str("    \"on any host must reproduce this file byte-identically. CI's\",\n");
    out.push_str("    \"svc-soak job re-runs the smoke soak and gates on smoke_digest;\",\n");
    out.push_str("    \"the default (4x4) run gates on soak_digest.\"\n");
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"config\": {{\"mesh\": \"{}x{}\", \"engines\": {}, \"requests_per_engine\": {}, \
         \"rate_per_engine\": {:.0}, \"seed\": {}, \"slo_p999_us\": {:.0}, \
         \"max_shed_fraction\": {:.2}, \"migrations\": {}}},\n",
        width,
        height,
        cfg.engines,
        cfg.requests,
        cfg.rate,
        cfg.seed,
        us(cfg.slo_p999.as_ps()),
        cfg.max_shed_fraction,
        cfg.migrations.len(),
    ));
    for (name, run) in [("baseline", &o.baseline), ("soaked", &o.soaked)] {
        out.push_str(&format!(
            "  \"{}\": {{\"issued\": {}, \"shed\": {}, \"shed_scans\": {}, \"shed_writes\": {}, \
             \"shed_reads\": {}, \"ok\": {}, \"errors\": {}, \"hedges\": {}, \"hedge_wins\": {}, \
             \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"p999_us\": {:.2}, \"max_us\": {:.2}, \
             \"service_spans\": {}, \"hist_digest\": \"{:016x}\"}},\n",
            name,
            run.issued,
            run.shed,
            run.shed_scans,
            run.shed_writes,
            run.shed_reads,
            run.ok,
            run.errors,
            run.hedges,
            run.hedge_wins,
            us(run.p50_ps),
            us(run.p99_ps),
            us(run.p999_ps),
            us(run.max_ps),
            run.service_spans,
            run.hist_digest,
        ));
    }
    out.push_str(&format!(
        "  \"healing\": {{\"acked_writes\": {}, \"lost_acks\": {}, \"promotions\": {}, \
         \"migrated\": {}, \"rearmed\": {}, \"event_log\": \"{}\", \
         \"state_digest\": \"{:016x}\"}},\n",
        o.acked_writes,
        o.lost_acks,
        o.promotions,
        o.migrated,
        o.rearmed,
        o.event_log.trim_end().replace('\n', "; "),
        o.state_digest,
    ));
    out.push_str(&format!(
        "  \"smoke_digest\": \"{:016x}\",\n  \"soak_digest\": \"{:016x}\"\n}}\n",
        smoke_digest,
        soak_digest(o)
    ));
    out
}

/// Extract a `"<field>": "<16 hex>"` digest from a committed
/// `BENCH_svcsoak.json`.
pub fn committed_digest(json: &str, field: &str) -> Option<u64> {
    let at = json.find(&format!("\"{field}\""))?;
    let tail = &json[at..];
    let q1 = tail.find(": \"")? + 3;
    let hex = tail.get(q1..q1 + 16)?;
    u64::from_str_radix(hex, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_soak_holds_slo_and_replays_bit_identically() {
        let cfg = SoakConfig::smoke();
        let a = run_soak(&cfg);
        assert_eq!(a.lost_acks, 0);
        assert!(a.promotions >= 1);
        assert_eq!(a.migrated, cfg.migrations.len() as u64);
        assert!(a.event_log.contains("migrate shard="));
        assert!(a.event_log.contains("promote shard="));
        assert!(a.event_log.contains("rearm shard="));
        assert!(a.soaked.service_spans > 0, "obs must capture service spans");
        // The soak exists to exercise degradation: the fault matrix
        // must actually cost the tail something relative to baseline.
        assert!(a.soaked.max_ps > a.baseline.max_ps);
        let b = run_soak(&cfg);
        assert_eq!(soak_digest(&a), soak_digest(&b), "soak must replay");
    }

    #[test]
    fn digest_extraction_roundtrips() {
        let cfg = SoakConfig::smoke();
        let o = run_soak(&cfg);
        let json = render_json(&cfg, &o, 0xdead_beef_dead_beef);
        assert_eq!(
            committed_digest(&json, "soak_digest"),
            Some(soak_digest(&o))
        );
        assert_eq!(
            committed_digest(&json, "smoke_digest"),
            Some(0xdead_beef_dead_beef)
        );
    }
}
