//! # shrimp-bench — harnesses regenerating the paper's evaluation
//!
//! One binary per figure (`fig3`, `fig4`, `fig5`, `fig7`, `fig8`,
//! `ttcp`, `ablations`) plus the fault-injection harness (`chaos`) and
//! the collective-communication scaling study (`collectives`) and the
//! topology-zoo collective-offload study (`topobench`);
//! this library holds the shared workloads and reporting. See DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results.
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablations;
pub mod chaos;
pub mod collectives;
pub mod nx_pingpong;
pub mod pingpong;
pub mod report;
pub mod rmcbench;
pub mod rpc_compare;
pub mod scale;
pub mod simperf;
pub mod simprof;
pub mod socket_bench;
pub mod svcbench;
pub mod svcsoak;
pub mod topobench;
pub mod vrpc_bench;

pub use report::{paper_sizes, render_figure, Point, Series, LATENCY_CUTOFF};
