//! The one-sided remote-memory benchmark: raw fetch latency and
//! bandwidth, the zero-copy svc `get` against its SRPC baseline, and
//! the disaggregated-memory pager — all in virtual time, so every
//! number replays bit-identically.
//!
//! Three cells:
//!
//! * **fetch** — a reader fetches `size` bytes from a remote export
//!   (read permission set) over a sweep of transfer sizes; per-fetch
//!   latency histograms give the median curve, and the total
//!   bytes-over-span give the achieved one-sided bandwidth.
//! * **get** — the serving comparison the paper's one-sided model
//!   motivates: the same keyed workload is read twice from a chained
//!   KV cluster, once over the SRPC request/response fast path and
//!   once with `read_through` on (one-sided fetch of the primary's
//!   slot table, RPC fallback). A remote `get` then costs roughly half
//!   the RPC's round trip: the request packet *is* the fetch
//!   descriptor and the primary's CPU never runs. The harness asserts
//!   the one-sided median actually beats the SRPC median.
//! * **pager** — an LRU [`RemotePager`] over a memory-server pool
//!   drives a deterministic hot/cold access pattern and reports hit
//!   rate, evictions, write-backs, and fault-latency percentiles.
//!
//! Digests over every virtual quantity gate `BENCH_rmc.json` in CI
//! (`rmcbench --check`).

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{BufferName, ExportOpts, ShrimpSystem, SystemConfig};
use shrimp_mesh::NodeId;
use shrimp_node::{CacheMode, PAGE_SIZE};
use shrimp_obs::Log2Hist;
use shrimp_sim::{Kernel, SimChannel, SplitMix64};
use shrimp_svc::{SvcClient, SvcCluster, SvcConfig};

/// Experiment shape for all three cells.
#[derive(Debug, Clone)]
pub struct RmcConfig {
    /// Mesh width.
    pub width: usize,
    /// Mesh height.
    pub height: usize,
    /// Fetch-cell transfer sizes (bytes, word-multiples).
    pub fetch_sizes: Vec<usize>,
    /// Fetches per size.
    pub fetch_reps: usize,
    /// Get-cell keys (spread over remote shards).
    pub get_keys: usize,
    /// Measured get rounds over the key set (after warm-up).
    pub get_rounds: usize,
    /// Pager-cell far-memory pages.
    pub pager_vpages: usize,
    /// Pager-cell local frames.
    pub pager_frames: usize,
    /// Pager-cell accesses.
    pub pager_ops: usize,
    /// Schedule seed.
    pub seed: u64,
}

impl RmcConfig {
    /// The committed configuration.
    pub fn paper() -> RmcConfig {
        RmcConfig {
            width: 2,
            height: 2,
            fetch_sizes: vec![64, 256, 1024, 4096, 16384, 65536],
            fetch_reps: 32,
            get_keys: 32,
            get_rounds: 8,
            pager_vpages: 32,
            pager_frames: 8,
            pager_ops: 2_000,
            seed: 42,
        }
    }

    /// A CI-sized variant.
    pub fn smoke() -> RmcConfig {
        RmcConfig {
            width: 2,
            height: 2,
            fetch_sizes: vec![64, 4096, 16384],
            fetch_reps: 8,
            get_keys: 12,
            get_rounds: 3,
            pager_vpages: 12,
            pager_frames: 4,
            pager_ops: 300,
            seed: 42,
        }
    }
}

/// One fetch-cell size point.
#[derive(Debug, Clone)]
pub struct FetchPoint {
    /// Transfer size, bytes.
    pub size: usize,
    /// Median per-fetch latency, picoseconds.
    pub p50_ps: u64,
    /// Mean per-fetch latency, picoseconds.
    pub mean_ps: u64,
    /// Achieved one-sided bandwidth over the cell, MB/s.
    pub mb_s: f64,
    /// Latency histogram digest.
    pub hist_digest: u64,
}

/// One serving-comparison run (SRPC baseline or one-sided).
#[derive(Debug, Clone, Default)]
pub struct GetCell {
    /// Median remote-get latency, picoseconds.
    pub p50_ps: u64,
    /// Mean remote-get latency, picoseconds.
    pub mean_ps: u64,
    /// Measured gets.
    pub gets: u64,
    /// Gets served by a one-sided fetch (0 for the SRPC baseline).
    pub fetch_hits: u64,
    /// Read-through attempts that fell back to RPC.
    pub fetch_misses: u64,
    /// Read-through transport refusals.
    pub fetch_errors: u64,
    /// Latency histogram digest.
    pub hist_digest: u64,
}

/// The pager cell's outcome.
#[derive(Debug, Clone, Default)]
pub struct PagerCell {
    /// Frame-cache hits.
    pub hits: u64,
    /// Remote page faults.
    pub misses: u64,
    /// Evictions.
    pub evictions: u64,
    /// Dirty write-backs.
    pub writebacks: u64,
    /// Hit rate over all accesses.
    pub hit_rate: f64,
    /// Median fault latency, picoseconds.
    pub fault_p50_ps: u64,
    /// Fault-latency histogram digest.
    pub fault_digest: u64,
    /// Virtual completion time of the workload, picoseconds.
    pub span_ps: u64,
}

/// Everything `rmcbench` measures.
#[derive(Debug, Clone)]
pub struct RmcOutcome {
    /// The fetch latency/bandwidth sweep.
    pub fetch: Vec<FetchPoint>,
    /// SRPC-served remote gets.
    pub srpc: GetCell,
    /// One-sided (read-through) remote gets.
    pub onesided: GetCell,
    /// The disaggregated-memory pager cell.
    pub pager: PagerCell,
}

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// Raw fetch sweep: node 0 fetches from node 1's read-exported pool.
pub fn run_fetch_cell(cfg: &RmcConfig) -> Vec<FetchPoint> {
    let mut out = Vec::new();
    for &size in &cfg.fetch_sizes {
        let kernel = Kernel::new();
        let system = ShrimpSystem::build(&kernel, SystemConfig::with_mesh(cfg.width, cfg.height));
        let names: SimChannel<BufferName> = SimChannel::new();
        let owner = system.endpoint(1, "rmcbench-owner");
        let reader = system.endpoint(0, "rmcbench-reader");
        let reps = cfg.fetch_reps;
        let result: Arc<Mutex<Option<(Log2Hist, u64)>>> = Arc::new(Mutex::new(None));

        {
            let names = names.clone();
            kernel.spawn("owner", move |ctx| {
                let buf = owner
                    .proc_()
                    .alloc(size.max(PAGE_SIZE), CacheMode::WriteBack);
                let fill: Vec<u8> = (0..size).map(|i| (i % 241) as u8).collect();
                owner.proc_().write(ctx, buf, &fill).unwrap();
                let name = owner
                    .export(
                        ctx,
                        buf,
                        size.max(PAGE_SIZE),
                        ExportOpts {
                            read: true,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                names.send(&ctx.handle(), name);
            });
        }
        let res = Arc::clone(&result);
        kernel.spawn("reader", move |ctx| {
            let name = names.recv(ctx);
            let src = reader.import(ctx, NodeId(1), name).unwrap();
            let dst = reader
                .proc_()
                .alloc(size.max(PAGE_SIZE), CacheMode::WriteBack);
            let mut hist = Log2Hist::default();
            let t_start = ctx.now();
            for _ in 0..reps {
                let t0 = ctx.now();
                reader.fetch(ctx, dst, &src, 0, size).unwrap();
                hist.record(ctx.now().since(t0).as_ps());
            }
            let span = ctx.now().since(t_start).as_ps();
            *res.lock() = Some((hist, span));
        });
        kernel
            .run_until_quiescent()
            .expect("fetch cell must quiesce");
        let (hist, span_ps) = result.lock().take().expect("reader must finish");
        let bytes = (size * reps) as f64;
        out.push(FetchPoint {
            size,
            p50_ps: hist.percentile(0.50),
            mean_ps: hist.mean(),
            mb_s: bytes / (span_ps as f64 / 1e12) / 1e6,
            hist_digest: hist.digest(),
        });
    }
    out
}

/// Remote-get comparison: the same keyed read workload against a
/// chained cluster, with or without the one-sided read-through path.
///
/// Only keys routing to shards whose primary is *not* the client's
/// node are measured — the comparison is about remote reads.
pub fn run_get_cell(cfg: &RmcConfig, read_through: bool) -> GetCell {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::with_mesh(cfg.width, cfg.height));
    let nodes = system.len();
    let mut scfg = SvcConfig::chained(nodes);
    scfg.read_through = read_through;
    let cluster = SvcCluster::spawn(&system, scfg);
    cluster.register_clients(1);
    let result: Arc<Mutex<Option<GetCell>>> = Arc::new(Mutex::new(None));

    let res = Arc::clone(&result);
    let cl = Arc::clone(&cluster);
    let want = cfg.get_keys;
    let rounds = cfg.get_rounds;
    kernel.spawn("rmcbench-get-client", move |ctx| {
        let mut cli = SvcClient::new(&cl, 0, "rmc");
        // Deterministic key set, filtered to remote shards.
        let mut keys: Vec<Vec<u8>> = Vec::new();
        let mut i = 0u64;
        while keys.len() < want {
            let key = format!("rmc-get-{i:04}").into_bytes();
            i += 1;
            if cl.route(cli.shard_of(&key)).primary != 0 {
                keys.push(key);
            }
        }
        for (k, key) in keys.iter().enumerate() {
            let val = format!("rmc-val-{k:04}-payload").into_bytes();
            cli.put(ctx, key, &val).unwrap();
        }
        // Warm-up: bindings, table imports, first-touch fallbacks.
        for _ in 0..2 {
            for key in &keys {
                cli.get(ctx, key).unwrap();
            }
        }
        let warm = cli.stats();
        let mut hist = Log2Hist::default();
        let mut gets = 0u64;
        for _ in 0..rounds {
            for (k, key) in keys.iter().enumerate() {
                let t0 = ctx.now();
                let (_, val) = cli.get(ctx, key).unwrap();
                hist.record(ctx.now().since(t0).as_ps());
                gets += 1;
                assert_eq!(
                    val.as_deref(),
                    Some(format!("rmc-val-{k:04}-payload").as_bytes()),
                    "measured get returned the wrong value"
                );
            }
        }
        let stats = cli.stats();
        *res.lock() = Some(GetCell {
            p50_ps: hist.percentile(0.50),
            mean_ps: hist.mean(),
            gets,
            fetch_hits: stats.fetch_hits - warm.fetch_hits,
            fetch_misses: stats.fetch_misses - warm.fetch_misses,
            fetch_errors: stats.fetch_errors - warm.fetch_errors,
            hist_digest: hist.digest(),
        });
        cl.client_done();
    });
    kernel.run_until_quiescent().expect("get cell must quiesce");
    let cell = result.lock().take().expect("client must finish");
    if read_through {
        assert!(
            cell.fetch_hits > 0,
            "the one-sided run must serve measured gets by fetch: {cell:?}"
        );
    } else {
        assert_eq!(cell.fetch_hits, 0, "the baseline must never fetch");
    }
    cell
}

/// Disaggregated-memory pager cell: a hot/cold access pattern (80% of
/// accesses to the first quarter of the pages) over a remote pool.
pub fn run_pager_cell(cfg: &RmcConfig) -> PagerCell {
    use shrimp_rmc::{MemoryServer, RemotePager};

    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::with_mesh(cfg.width, cfg.height));
    let names: SimChannel<BufferName> = SimChannel::new();
    let server = system.endpoint(1, "rmcbench-memserver");
    let client = system.endpoint(0, "rmcbench-pager");
    let (vpages, frames, ops, seed) = (cfg.pager_vpages, cfg.pager_frames, cfg.pager_ops, cfg.seed);
    let result: Arc<Mutex<Option<PagerCell>>> = Arc::new(Mutex::new(None));

    {
        let names = names.clone();
        kernel.spawn("memserver", move |ctx| {
            let srv = MemoryServer::export(server, ctx, vpages).unwrap();
            names.send(&ctx.handle(), srv.name());
            // The server CPU idles; its NIC serves fetches and accepts
            // write-back deposits on its own.
        });
    }
    let res = Arc::clone(&result);
    kernel.spawn("pager", move |ctx| {
        let name = names.recv(ctx);
        let pool = client.import(ctx, NodeId(1), name).unwrap();
        let mut pager = RemotePager::new(client, pool, vpages, frames);
        let mut rng = SplitMix64::new(seed);
        let hot = (vpages / 4).max(1);
        for _ in 0..ops {
            let page = if rng.next_below(100) < 80 {
                rng.next_below(hot as u64) as usize
            } else {
                rng.next_below(vpages as u64) as usize
            };
            let addr = page * PAGE_SIZE + rng.next_below((PAGE_SIZE - 64) as u64) as usize;
            if rng.next_below(100) < 30 {
                let fill = [(page % 251) as u8; 64];
                pager.write(ctx, addr, &fill).unwrap();
            } else {
                let _ = pager.read(ctx, addr, 64).unwrap();
            }
        }
        pager.flush(ctx).unwrap();
        let s = pager.stats();
        *res.lock() = Some(PagerCell {
            hits: s.hits,
            misses: s.misses,
            evictions: s.evictions,
            writebacks: s.writebacks,
            hit_rate: s.hit_rate(),
            fault_p50_ps: s.fault_latency.percentile(0.50),
            fault_digest: s.fault_latency.digest(),
            span_ps: ctx.now().since(shrimp_sim::SimTime::ZERO).as_ps(),
        });
    });
    kernel
        .run_until_quiescent()
        .expect("pager cell must quiesce");
    let cell = result.lock().take().expect("pager must finish");
    cell
}

/// The full run.
///
/// # Panics
///
/// Panics unless the one-sided svc `get` beats the SRPC baseline on
/// median latency — the whole point of the remote-fetch engine.
pub fn run_all(cfg: &RmcConfig) -> RmcOutcome {
    let fetch = run_fetch_cell(cfg);
    let srpc = run_get_cell(cfg, false);
    let onesided = run_get_cell(cfg, true);
    assert!(
        onesided.p50_ps < srpc.p50_ps,
        "one-sided get (p50 {} ps) must beat SRPC get (p50 {} ps)",
        onesided.p50_ps,
        srpc.p50_ps
    );
    let pager = run_pager_cell(cfg);
    RmcOutcome {
        fetch,
        srpc,
        onesided,
        pager,
    }
}

/// Replay-stable digest over every virtual quantity.
pub fn rmc_digest(o: &RmcOutcome) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for p in &o.fetch {
        for v in [p.size as u64, p.p50_ps, p.mean_ps, p.hist_digest] {
            fnv(&mut h, &v.to_le_bytes());
        }
    }
    for c in [&o.srpc, &o.onesided] {
        for v in [
            c.p50_ps,
            c.mean_ps,
            c.gets,
            c.fetch_hits,
            c.fetch_misses,
            c.fetch_errors,
            c.hist_digest,
        ] {
            fnv(&mut h, &v.to_le_bytes());
        }
    }
    for v in [
        o.pager.hits,
        o.pager.misses,
        o.pager.evictions,
        o.pager.writebacks,
        o.pager.fault_p50_ps,
        o.pager.fault_digest,
        o.pager.span_ps,
    ] {
        fnv(&mut h, &v.to_le_bytes());
    }
    h
}

fn us(ps: u64) -> f64 {
    ps as f64 / 1e6
}

/// Render the committed `results/rmc_curve.txt`.
pub fn render_curve(cfg: &RmcConfig, o: &RmcOutcome) -> String {
    let mut out = format!(
        "one-sided remote memory mesh={}x{} reps={} seed={}\n\
         fetch latency/bandwidth (node0 <- node1):\n\
         {:>9} {:>10} {:>10} {:>10}\n",
        cfg.width, cfg.height, cfg.fetch_reps, cfg.seed, "bytes", "p50_us", "mean_us", "MB/s",
    );
    for p in &o.fetch {
        out.push_str(&format!(
            "{:>9} {:>10.2} {:>10.2} {:>10.1}\n",
            p.size,
            us(p.p50_ps),
            us(p.mean_ps),
            p.mb_s,
        ));
    }
    let speedup = o.srpc.p50_ps as f64 / o.onesided.p50_ps.max(1) as f64;
    out.push_str(&format!(
        "svc remote get ({} gets/run): srpc_p50_us={:.2} onesided_p50_us={:.2} \
         speedup={:.2}x fetch_hits={} misses={} errors={}\n",
        o.srpc.gets,
        us(o.srpc.p50_ps),
        us(o.onesided.p50_ps),
        speedup,
        o.onesided.fetch_hits,
        o.onesided.fetch_misses,
        o.onesided.fetch_errors,
    ));
    out.push_str(&format!(
        "pager vpages={} frames={} ops={}: hits={} misses={} evictions={} \
         writebacks={} hit_rate={:.3} fault_p50_us={:.2}\n",
        cfg.pager_vpages,
        cfg.pager_frames,
        cfg.pager_ops,
        o.pager.hits,
        o.pager.misses,
        o.pager.evictions,
        o.pager.writebacks,
        o.pager.hit_rate,
        us(o.pager.fault_p50_ps),
    ));
    out
}

/// Render the committed `BENCH_rmc.json`.
pub fn render_json(cfg: &RmcConfig, o: &RmcOutcome) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"comment\": [\n");
    out.push_str("    \"One-sided remote memory: raw fetch latency/bandwidth, the\",\n");
    out.push_str("    \"zero-copy svc get vs its SRPC baseline, and the disaggregated-\",\n");
    out.push_str("    \"memory pager. Generated by `cargo run --release -p shrimp-bench\",\n");
    out.push_str("    \"--bin rmcbench`. All quantities are virtual-time deterministic;\",\n");
    out.push_str("    \"CI's rmc-smoke job re-runs the cells and compares the digest.\"\n");
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"config\": {{\"mesh\": \"{}x{}\", \"fetch_reps\": {}, \"get_keys\": {}, \
         \"get_rounds\": {}, \"pager_vpages\": {}, \"pager_frames\": {}, \"pager_ops\": {}, \
         \"seed\": {}}},\n",
        cfg.width,
        cfg.height,
        cfg.fetch_reps,
        cfg.get_keys,
        cfg.get_rounds,
        cfg.pager_vpages,
        cfg.pager_frames,
        cfg.pager_ops,
        cfg.seed
    ));
    out.push_str("  \"fetch\": [\n");
    for (i, p) in o.fetch.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"bytes\": {}, \"p50_us\": {:.2}, \"mean_us\": {:.2}, \"mb_s\": {:.1}, \
             \"hist_digest\": \"{:016x}\"}}{}\n",
            p.size,
            us(p.p50_ps),
            us(p.mean_ps),
            p.mb_s,
            p.hist_digest,
            if i + 1 == o.fetch.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    for (name, c) in [("srpc_get", &o.srpc), ("onesided_get", &o.onesided)] {
        out.push_str(&format!(
            "  \"{name}\": {{\"p50_us\": {:.2}, \"mean_us\": {:.2}, \"gets\": {}, \
             \"fetch_hits\": {}, \"fetch_misses\": {}, \"fetch_errors\": {}, \
             \"hist_digest\": \"{:016x}\"}},\n",
            us(c.p50_ps),
            us(c.mean_ps),
            c.gets,
            c.fetch_hits,
            c.fetch_misses,
            c.fetch_errors,
            c.hist_digest,
        ));
    }
    out.push_str(&format!(
        "  \"pager\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"writebacks\": {}, \
         \"hit_rate\": {:.3}, \"fault_p50_us\": {:.2}, \"fault_digest\": \"{:016x}\"}},\n",
        o.pager.hits,
        o.pager.misses,
        o.pager.evictions,
        o.pager.writebacks,
        o.pager.hit_rate,
        us(o.pager.fault_p50_ps),
        o.pager.fault_digest,
    ));
    out.push_str(&format!(
        "  \"rmc_digest\": \"{:016x}\"\n}}\n",
        rmc_digest(o)
    ));
    out
}

/// Extract a `"<field>": "<16 hex>"` digest from a committed
/// `BENCH_rmc.json`.
pub fn committed_digest(json: &str, field: &str) -> Option<u64> {
    let at = json.find(&format!("\"{field}\""))?;
    let tail = &json[at..];
    let q1 = tail.find(": \"")? + 3;
    let hex = tail.get(q1..q1 + 16)?;
    u64::from_str_radix(hex, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_onesided_beats_srpc_and_replays() {
        let cfg = RmcConfig::smoke();
        let o = run_all(&cfg);
        assert!(o.onesided.p50_ps < o.srpc.p50_ps);
        assert!(o.pager.misses > 0 && o.pager.hits > 0);
        assert!(o.fetch.iter().all(|p| p.p50_ps > 0));
        // Larger transfers achieve more bandwidth.
        assert!(o.fetch.last().unwrap().mb_s > o.fetch.first().unwrap().mb_s);
        let o2 = run_all(&cfg);
        assert_eq!(rmc_digest(&o), rmc_digest(&o2), "rmcbench must replay");
    }

    #[test]
    fn digest_extraction_roundtrips() {
        let cfg = RmcConfig::smoke();
        let o = run_all(&cfg);
        let json = render_json(&cfg, &o);
        assert_eq!(committed_digest(&json, "rmc_digest"), Some(rmc_digest(&o)));
    }
}
