//! Observability invariance: enabling the `shrimp-obs` recorder must
//! not change a single virtual result.
//!
//! Recording is passive by construction (layers push spans, never
//! schedule events), but "by construction" claims rot; this suite
//! replays the simperf workloads — whose `virt_digest` is a stable
//! FNV-1a digest of every modelled latency and bandwidth — with and
//! without a recorder installed and demands bit-identical digests.

use proptest::prelude::*;
use shrimp_bench::simperf::{
    no_alloc_counter, workload_coll4x4, workload_coll8x8, workload_fig3, workload_fig7,
    AllocCounter, WorkloadResult,
};
use shrimp_obs::Recorder;

type WorkloadFn = fn(AllocCounter) -> WorkloadResult;

const WORKLOADS: [(&str, WorkloadFn); 4] = [
    ("fig3", workload_fig3),
    ("fig7", workload_fig7),
    ("coll4x4", workload_coll4x4),
    ("coll8x8", workload_coll8x8),
];

fn digest_pair(f: WorkloadFn) -> (u64, u64, usize) {
    let plain = f(no_alloc_counter).virt_digest;
    let rec = Recorder::new();
    let observed = {
        let _g = rec.install();
        f(no_alloc_counter).virt_digest
    };
    (plain, observed, rec.len())
}

#[test]
fn all_simperf_digests_are_identical_with_observability_enabled() {
    for (name, f) in WORKLOADS {
        let (plain, observed, spans) = digest_pair(f);
        assert_eq!(
            plain, observed,
            "{name}: virt_digest changed when a recorder was installed \
             ({plain:#018x} vs {observed:#018x})"
        );
        assert!(spans > 0, "{name}: recorder observed no spans");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any workload, replayed in any order, with or without a recorder
    /// first: the digest never moves. (The recorder's thread-local
    /// install must also leave no residue for the following plain run.)
    #[test]
    fn digest_is_order_and_observer_independent(idx in 0usize..3, observed_first in any::<bool>()) {
        let (_name, f) = WORKLOADS[idx];
        let (a, b) = if observed_first {
            let rec = Recorder::new();
            let o = { let _g = rec.install(); f(no_alloc_counter).virt_digest };
            (o, f(no_alloc_counter).virt_digest)
        } else {
            let p = f(no_alloc_counter).virt_digest;
            let rec = Recorder::new();
            (p, { let _g = rec.install(); f(no_alloc_counter).virt_digest })
        };
        prop_assert_eq!(a, b);
    }
}
