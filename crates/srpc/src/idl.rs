//! The SHRIMP RPC interface definition language.
//!
//! The specialized RPC system "is a real RPC system, with a stub
//! generator that reads an interface definition file and generates code
//! to marshal and unmarshal complex data types" (paper §5). This module
//! is that reader. The grammar:
//!
//! ```text
//! interface Calc {
//!     add(in a: i32, in b: i32, out sum: i32);
//!     scale(in factor: f64, inout v: array<f64, 16>);
//!     transform(inout data: opaque[256]);
//! }
//! ```
//!
//! Types: `i32`, `u32`, `f64`, `bool`, `opaque[N]` (fixed-size byte
//! blocks), and `array<T, N>` of scalar `T`.

use std::fmt;

/// Parameter direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Client → server only.
    In,
    /// Server → client only (propagated in the background by automatic
    /// update as the procedure writes it).
    Out,
    /// Both directions; passed to the procedure by reference.
    InOut,
}

impl Dir {
    /// True if the client sends this parameter.
    pub fn is_in(self) -> bool {
        matches!(self, Dir::In | Dir::InOut)
    }

    /// True if the server returns this parameter.
    pub fn is_out(self) -> bool {
        matches!(self, Dir::Out | Dir::InOut)
    }
}

/// A parameter's wire type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// Signed 32-bit integer.
    I32,
    /// Unsigned 32-bit integer.
    U32,
    /// IEEE double.
    F64,
    /// Boolean (one word on the wire).
    Bool,
    /// Fixed-size opaque bytes.
    Opaque(usize),
    /// Fixed-size array of doubles.
    F64Array(usize),
    /// Fixed-size array of 32-bit integers.
    I32Array(usize),
}

impl Ty {
    /// Bytes this type occupies on the wire (padded to whole words).
    pub fn wire_bytes(self) -> usize {
        match self {
            Ty::I32 | Ty::U32 | Ty::Bool => 4,
            Ty::F64 => 8,
            Ty::Opaque(n) => n.div_ceil(4) * 4,
            Ty::F64Array(n) => 8 * n,
            Ty::I32Array(n) => 4 * n,
        }
    }
}

/// One declared parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Direction.
    pub dir: Dir,
    /// Wire type.
    pub ty: Ty,
}

/// One declared procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcDef {
    /// Procedure name.
    pub name: String,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
}

/// A parsed interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interface {
    /// Interface name.
    pub name: String,
    /// Procedures in declaration order (the wire procedure index).
    pub procs: Vec<ProcDef>,
}

impl Interface {
    /// Find a procedure's index by name.
    pub fn proc_index(&self, name: &str) -> Option<usize> {
        self.procs.iter().position(|p| p.name == name)
    }
}

/// A parse failure, with a human-readable location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the source.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "idl parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Number(usize),
    Punct(char),
    Eof,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer { src, pos: 0 }
    }

    fn skip_ws(&mut self) {
        loop {
            let rest = &self.src[self.pos..];
            let trimmed = rest.trim_start();
            self.pos += rest.len() - trimmed.len();
            // Line comments.
            if trimmed.starts_with("//") {
                match trimmed.find('\n') {
                    Some(nl) => self.pos += nl + 1,
                    None => self.pos = self.src.len(),
                }
            } else {
                return;
            }
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            at: self.pos,
        }
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        let mut chars = rest.chars();
        let Some(c) = chars.next() else {
            return Ok(Tok::Eof);
        };
        if c.is_ascii_alphabetic() || c == '_' {
            let end = rest
                .find(|ch: char| !(ch.is_ascii_alphanumeric() || ch == '_'))
                .unwrap_or(rest.len());
            let ident = rest[..end].to_string();
            self.pos += end;
            Ok(Tok::Ident(ident))
        } else if c.is_ascii_digit() {
            let end = rest
                .find(|ch: char| !ch.is_ascii_digit())
                .unwrap_or(rest.len());
            let n = rest[..end]
                .parse::<usize>()
                .map_err(|_| self.err("number out of range"))?;
            self.pos += end;
            Ok(Tok::Number(n))
        } else if "{}()[]<>,;:".contains(c) {
            self.pos += c.len_utf8();
            Ok(Tok::Punct(c))
        } else {
            Err(self.err(format!("unexpected character {c:?}")))
        }
    }

    fn expect_punct(&mut self, want: char) -> Result<(), ParseError> {
        match self.next()? {
            Tok::Punct(c) if c == want => Ok(()),
            other => Err(self.err(format!("expected {want:?}, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_number(&mut self) -> Result<usize, ParseError> {
        match self.next()? {
            Tok::Number(n) => Ok(n),
            other => Err(self.err(format!("expected number, found {other:?}"))),
        }
    }

    fn peek(&mut self) -> Result<Tok, ParseError> {
        let save = self.pos;
        let t = self.next()?;
        self.pos = save;
        Ok(t)
    }
}

/// Parse an interface definition.
///
/// # Errors
///
/// [`ParseError`] with the failing byte offset.
///
/// # Examples
///
/// ```
/// let iface = shrimp_srpc::parse_interface(
///     "interface Null { ping(inout data: opaque[4]); }",
/// ).unwrap();
/// assert_eq!(iface.name, "Null");
/// assert_eq!(iface.procs.len(), 1);
/// ```
pub fn parse_interface(src: &str) -> Result<Interface, ParseError> {
    let mut lex = Lexer::new(src);
    match lex.next()? {
        Tok::Ident(kw) if kw == "interface" => {}
        other => return Err(lex.err(format!("expected 'interface', found {other:?}"))),
    }
    let name = lex.expect_ident()?;
    lex.expect_punct('{')?;
    let mut procs = Vec::new();
    loop {
        match lex.peek()? {
            Tok::Punct('}') => {
                lex.next()?;
                break;
            }
            Tok::Eof => return Err(lex.err("unexpected end of input inside interface")),
            _ => procs.push(parse_proc(&mut lex)?),
        }
    }
    if procs.is_empty() {
        return Err(lex.err("interface declares no procedures"));
    }
    if procs.len() > 255 {
        return Err(lex.err("at most 255 procedures per interface"));
    }
    Ok(Interface { name, procs })
}

fn parse_proc(lex: &mut Lexer<'_>) -> Result<ProcDef, ParseError> {
    let name = lex.expect_ident()?;
    lex.expect_punct('(')?;
    let mut params = Vec::new();
    if lex.peek()? == Tok::Punct(')') {
        lex.next()?;
    } else {
        loop {
            params.push(parse_param(lex)?);
            match lex.next()? {
                Tok::Punct(',') => continue,
                Tok::Punct(')') => break,
                other => return Err(lex.err(format!("expected ',' or ')', found {other:?}"))),
            }
        }
    }
    lex.expect_punct(';')?;
    let mut seen = std::collections::HashSet::new();
    for p in &params {
        if !seen.insert(p.name.clone()) {
            return Err(lex.err(format!("duplicate parameter name '{}'", p.name)));
        }
    }
    Ok(ProcDef { name, params })
}

fn parse_param(lex: &mut Lexer<'_>) -> Result<Param, ParseError> {
    let dir = match lex.expect_ident()?.as_str() {
        "in" => Dir::In,
        "out" => Dir::Out,
        "inout" => Dir::InOut,
        other => return Err(lex.err(format!("expected in/out/inout, found '{other}'"))),
    };
    let name = lex.expect_ident()?;
    lex.expect_punct(':')?;
    let ty = parse_ty(lex)?;
    Ok(Param { name, dir, ty })
}

fn parse_ty(lex: &mut Lexer<'_>) -> Result<Ty, ParseError> {
    let base = lex.expect_ident()?;
    match base.as_str() {
        "i32" => Ok(Ty::I32),
        "u32" => Ok(Ty::U32),
        "f64" => Ok(Ty::F64),
        "bool" => Ok(Ty::Bool),
        "opaque" => {
            lex.expect_punct('[')?;
            let n = lex.expect_number()?;
            lex.expect_punct(']')?;
            if n == 0 {
                return Err(lex.err("opaque size must be positive"));
            }
            Ok(Ty::Opaque(n))
        }
        "array" => {
            lex.expect_punct('<')?;
            let elem = lex.expect_ident()?;
            lex.expect_punct(',')?;
            let n = lex.expect_number()?;
            lex.expect_punct('>')?;
            if n == 0 {
                return Err(lex.err("array length must be positive"));
            }
            match elem.as_str() {
                "f64" => Ok(Ty::F64Array(n)),
                "i32" => Ok(Ty::I32Array(n)),
                other => Err(lex.err(format!("unsupported array element type '{other}'"))),
            }
        }
        other => Err(lex.err(format!("unknown type '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CALC: &str = r"
        // A toy calculator service.
        interface Calc {
            add(in a: i32, in b: i32, out sum: i32);
            scale(in factor: f64, inout v: array<f64, 16>);
            transform(inout data: opaque[256]);
            nop();
        }
    ";

    #[test]
    fn parses_full_interface() {
        let iface = parse_interface(CALC).unwrap();
        assert_eq!(iface.name, "Calc");
        assert_eq!(iface.procs.len(), 4);
        assert_eq!(iface.proc_index("scale"), Some(1));
        let add = &iface.procs[0];
        assert_eq!(add.params.len(), 3);
        assert_eq!(
            add.params[2],
            Param {
                name: "sum".into(),
                dir: Dir::Out,
                ty: Ty::I32
            }
        );
        let scale = &iface.procs[1];
        assert_eq!(scale.params[1].ty, Ty::F64Array(16));
        assert_eq!(iface.procs[3].params.len(), 0);
    }

    #[test]
    fn wire_bytes_are_word_padded() {
        assert_eq!(Ty::I32.wire_bytes(), 4);
        assert_eq!(Ty::F64.wire_bytes(), 8);
        assert_eq!(Ty::Opaque(5).wire_bytes(), 8);
        assert_eq!(Ty::Opaque(8).wire_bytes(), 8);
        assert_eq!(Ty::F64Array(3).wire_bytes(), 24);
        assert_eq!(Ty::I32Array(3).wire_bytes(), 12);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(parse_interface("interface X { }").is_err()); // no procs
        assert!(parse_interface("iface X { f(); }").is_err()); // bad keyword
        assert!(parse_interface("interface X { f(in a b: i32); }").is_err());
        assert!(parse_interface("interface X { f(in a: opaque[0]); }").is_err());
        assert!(parse_interface("interface X { f(in a: array<bool, 4>); }").is_err());
        assert!(parse_interface("interface X { f(sideways a: i32); }").is_err());
        assert!(parse_interface("interface X { f(in a: i32, in a: i32); }").is_err());
        assert!(parse_interface("interface X { f(in a: i32)").is_err()); // truncated
    }

    #[test]
    fn comments_are_skipped() {
        let iface = parse_interface("interface C { // hi\n f(); // there\n }").unwrap();
        assert_eq!(iface.procs.len(), 1);
    }

    #[test]
    fn dir_predicates() {
        assert!(Dir::In.is_in() && !Dir::In.is_out());
        assert!(!Dir::Out.is_in() && Dir::Out.is_out());
        assert!(Dir::InOut.is_in() && Dir::InOut.is_out());
    }
}
