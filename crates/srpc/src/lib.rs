//! # shrimp-srpc — the specialized SHRIMP RPC
//!
//! The non-compatible RPC system of paper §5: a real RPC system with a
//! stub generator that reads an interface definition file
//! ([`parse_interface`]) and produces marshaling plans
//! ([`InterfacePlan`]) — plus the equivalent generated stub source
//! ([`emit_client_stub`]) — designed from scratch for SHRIMP:
//!
//! * each binding is one receive buffer on each side with bidirectional
//!   import-export (automatic update) mappings between them, following
//!   Bershad's URPC;
//! * the client stub fills memory locations consecutively — arguments,
//!   then the flag one word after — so the hardware combines the whole
//!   call into a single packet;
//! * OUT and INOUT parameters are written by the procedure *by
//!   reference* and propagate back to the client in the background,
//!   overlapped with the server's computation; when the procedure ends
//!   the server just writes the reply flag;
//! * no headers: the entire protocol overhead is one flag word, which is
//!   why the null call costs 9.5 µs round trip against SunRPC's 29 µs
//!   (Figure 8), with software overhead under 1 µs.
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod codegen;
mod idl;
mod layout;
mod runtime;

pub use codegen::emit_client_stub;
pub use idl::{parse_interface, Dir, Interface, Param, ParseError, ProcDef, Ty};
pub use layout::{InterfacePlan, ParamSlot, ProcPlan};
pub use runtime::{
    OutWriter, SrpcClient, SrpcConn, SrpcConnect, SrpcDirectory, SrpcError, SrpcHandler,
    SrpcServer, Val,
};
