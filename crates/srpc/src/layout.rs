//! Marshaling plans: where each parameter lives in the mirrored
//! communication buffers.
//!
//! The buffers are laid out so the flag is immediately after the data
//! and in the same place for all calls that use the same binding (paper
//! §5 "Buffer Management"). With one fixed flag offset, each procedure's
//! parameters are packed *ending at* the flag word, so the client stub
//! fills memory locations consecutively upward and the final flag store
//! extends the same ascending run — letting the hardware combine all of
//! the arguments and the flag into a single packet.

use crate::idl::{Interface, Param, ProcDef};

/// One parameter's placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSlot {
    /// The declaration.
    pub param: Param,
    /// Byte offset within the binding's buffer.
    pub offset: usize,
}

/// A procedure's marshaling plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcPlan {
    /// The declaration.
    pub def: ProcDef,
    /// Parameter placements, in declaration order (ascending offsets).
    pub slots: Vec<ParamSlot>,
    /// Total parameter bytes.
    pub args_bytes: usize,
}

/// The complete plan for an interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfacePlan {
    /// Interface name.
    pub name: String,
    /// Per-procedure plans, indexed by wire procedure number.
    pub procs: Vec<ProcPlan>,
    /// Byte offset of the flag word (also the size of the parameter
    /// area).
    pub flag_offset: usize,
    /// Total buffer bytes per side (parameter area + flag word).
    pub buffer_bytes: usize,
}

impl InterfacePlan {
    /// Compute the plan for an interface.
    pub fn new(iface: &Interface) -> InterfacePlan {
        let flag_offset = iface
            .procs
            .iter()
            .map(|p| p.params.iter().map(|q| q.ty.wire_bytes()).sum::<usize>())
            .max()
            .unwrap_or(0);
        let procs = iface
            .procs
            .iter()
            .map(|def| {
                let args_bytes: usize = def.params.iter().map(|q| q.ty.wire_bytes()).sum();
                let mut off = flag_offset - args_bytes;
                let slots = def
                    .params
                    .iter()
                    .map(|param| {
                        let slot = ParamSlot {
                            param: param.clone(),
                            offset: off,
                        };
                        off += param.ty.wire_bytes();
                        slot
                    })
                    .collect();
                ProcPlan {
                    def: def.clone(),
                    slots,
                    args_bytes,
                }
            })
            .collect();
        InterfacePlan {
            name: iface.name.clone(),
            procs,
            flag_offset,
            buffer_bytes: flag_offset + 4,
        }
    }

    /// Encode a call-flag word: sequence number and procedure index.
    pub fn call_flag(seq: u32, proc_idx: usize) -> u32 {
        (seq << 8) | (proc_idx as u32 + 1)
    }

    /// Encode the matching reply-flag word.
    pub fn reply_flag(seq: u32) -> u32 {
        seq << 8
    }

    /// Decode a call-flag word into (seq, proc index); `None` for reply
    /// flags or the initial zero.
    pub fn decode_call_flag(v: u32) -> Option<(u32, usize)> {
        let idx = v & 0xFF;
        if idx == 0 {
            return None;
        }
        Some((v >> 8, (idx - 1) as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idl::parse_interface;

    fn plan(src: &str) -> InterfacePlan {
        InterfacePlan::new(&parse_interface(src).unwrap())
    }

    #[test]
    fn params_end_at_the_flag_for_every_proc() {
        let p = plan(
            "interface X {
                small(in a: i32);
                big(in a: i32, inout b: opaque[100], out c: f64);
            }",
        );
        // flag offset = max args = 4 + 100(->100) + 8 = 112.
        assert_eq!(p.flag_offset, 112);
        assert_eq!(p.buffer_bytes, 116);
        // Every procedure's last parameter abuts the flag.
        for proc_ in &p.procs {
            if let Some(last) = proc_.slots.last() {
                assert_eq!(last.offset + last.param.ty.wire_bytes(), p.flag_offset);
            }
            // Slots ascend contiguously.
            for w in proc_.slots.windows(2) {
                assert_eq!(w[0].offset + w[0].param.ty.wire_bytes(), w[1].offset);
            }
        }
        assert_eq!(p.procs[0].slots[0].offset, 108);
        assert_eq!(p.procs[1].slots[0].offset, 0);
    }

    #[test]
    fn empty_proc_has_no_slots() {
        let p = plan("interface X { nop(); f(in a: i32); }");
        assert!(p.procs[0].slots.is_empty());
        assert_eq!(p.procs[0].args_bytes, 0);
    }

    #[test]
    fn flag_words_round_trip() {
        for seq in [0u32, 1, 77, 0xFFFF] {
            for idx in [0usize, 3, 254] {
                let f = InterfacePlan::call_flag(seq, idx);
                assert_eq!(InterfacePlan::decode_call_flag(f), Some((seq, idx)));
            }
            assert_eq!(
                InterfacePlan::decode_call_flag(InterfacePlan::reply_flag(seq)),
                None
            );
        }
    }
}
