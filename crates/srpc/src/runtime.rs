//! The SHRIMP RPC runtime: bindings, client stubs, server dispatch.
//!
//! Each binding consists of one receive buffer on each side with
//! bidirectional import-export mappings between them (paper §5,
//! following Bershad's URPC). Both buffers are simultaneously exported
//! (so the peer's automatic updates land in them) and bound by automatic
//! update (so local marshaling stores propagate to the peer). A call is
//! nothing more than the client stub filling its buffer consecutively —
//! arguments, then the flag — and the hardware combining everything into
//! a single packet; OUT and INOUT parameters are written by the server
//! procedure *by reference* and propagate back in the background while
//! the server computes.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{BufferName, ExportOpts, ImportHandle, Vmmc, VmmcError};
use shrimp_mesh::NodeId;
use shrimp_node::{CacheMode, VAddr, PAGE_SIZE};
use shrimp_sim::{Ctx, SimChannel, SimDur, SimTime};

use crate::idl::{Interface, Ty};
use crate::layout::{InterfacePlan, ParamSlot};

/// Reserved flag byte marking connection close.
const CLOSE_MARK: u32 = 0xFF;

/// A dynamic parameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// `i32`.
    I32(i32),
    /// `u32`.
    U32(u32),
    /// `f64`.
    F64(f64),
    /// `bool`.
    Bool(bool),
    /// `opaque[N]` — must match the declared length.
    Bytes(Vec<u8>),
    /// `array<f64, N>` — must match the declared length.
    F64Array(Vec<f64>),
    /// `array<i32, N>` — must match the declared length.
    I32Array(Vec<i32>),
}

impl Val {
    /// Wire-encode, padded to the type's wire size.
    ///
    /// # Errors
    ///
    /// [`SrpcError::TypeMismatch`] if the value does not match `ty`.
    pub fn encode(&self, ty: Ty) -> Result<Vec<u8>, SrpcError> {
        let mut out = match (self, ty) {
            (Val::I32(v), Ty::I32) => v.to_le_bytes().to_vec(),
            (Val::U32(v), Ty::U32) => v.to_le_bytes().to_vec(),
            (Val::F64(v), Ty::F64) => v.to_le_bytes().to_vec(),
            (Val::Bool(v), Ty::Bool) => (*v as u32).to_le_bytes().to_vec(),
            (Val::Bytes(b), Ty::Opaque(n)) if b.len() == n => b.clone(),
            (Val::F64Array(a), Ty::F64Array(n)) if a.len() == n => {
                a.iter().flat_map(|v| v.to_le_bytes()).collect()
            }
            (Val::I32Array(a), Ty::I32Array(n)) if a.len() == n => {
                a.iter().flat_map(|v| v.to_le_bytes()).collect()
            }
            _ => return Err(SrpcError::TypeMismatch { expected: ty }),
        };
        out.resize(ty.wire_bytes(), 0);
        Ok(out)
    }

    /// Decode a value of `ty` from its wire bytes.
    pub fn decode(ty: Ty, b: &[u8]) -> Val {
        match ty {
            Ty::I32 => Val::I32(i32::from_le_bytes(b[..4].try_into().expect("4 bytes"))),
            Ty::U32 => Val::U32(u32::from_le_bytes(b[..4].try_into().expect("4 bytes"))),
            Ty::F64 => Val::F64(f64::from_le_bytes(b[..8].try_into().expect("8 bytes"))),
            Ty::Bool => Val::Bool(b[0] != 0),
            Ty::Opaque(n) => Val::Bytes(b[..n].to_vec()),
            Ty::F64Array(n) => Val::F64Array(
                (0..n)
                    .map(|i| f64::from_le_bytes(b[i * 8..i * 8 + 8].try_into().expect("8 bytes")))
                    .collect(),
            ),
            Ty::I32Array(n) => Val::I32Array(
                (0..n)
                    .map(|i| i32::from_le_bytes(b[i * 4..i * 4 + 4].try_into().expect("4 bytes")))
                    .collect(),
            ),
        }
    }

    /// The zero value of a type (placeholder written into OUT slots to
    /// keep the marshaling run consecutive).
    pub fn zero(ty: Ty) -> Val {
        match ty {
            Ty::I32 => Val::I32(0),
            Ty::U32 => Val::U32(0),
            Ty::F64 => Val::F64(0.0),
            Ty::Bool => Val::Bool(false),
            Ty::Opaque(n) => Val::Bytes(vec![0; n]),
            Ty::F64Array(n) => Val::F64Array(vec![0.0; n]),
            Ty::I32Array(n) => Val::I32Array(vec![0; n]),
        }
    }
}

/// SHRIMP RPC errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SrpcError {
    /// No such procedure in the bound interface.
    UnknownProc(String),
    /// Wrong number of IN arguments.
    ArgCount {
        /// Expected count.
        expected: usize,
        /// Provided count.
        got: usize,
    },
    /// An argument's type does not match the declaration.
    TypeMismatch {
        /// The declared type.
        expected: Ty,
    },
    /// Transport failure.
    Vmmc(VmmcError),
}

impl std::fmt::Display for SrpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SrpcError::UnknownProc(n) => write!(f, "unknown procedure '{n}'"),
            SrpcError::ArgCount { expected, got } => {
                write!(f, "expected {expected} in-arguments, got {got}")
            }
            SrpcError::TypeMismatch { expected } => {
                write!(f, "argument does not match declared type {expected:?}")
            }
            SrpcError::Vmmc(e) => write!(f, "transport: {e}"),
        }
    }
}

impl std::error::Error for SrpcError {}

impl From<VmmcError> for SrpcError {
    fn from(e: VmmcError) -> Self {
        SrpcError::Vmmc(e)
    }
}

impl From<shrimp_node::MemFault> for SrpcError {
    fn from(e: shrimp_node::MemFault) -> Self {
        SrpcError::Vmmc(VmmcError::Fault(e))
    }
}

/// A connection request for a named SHRIMP RPC service.
#[derive(Debug)]
pub struct SrpcConnect {
    /// Client's node.
    pub client_node: NodeId,
    /// Client's exported communication buffer.
    pub client_region: BufferName,
    /// Channel for the server's (node, region) answer.
    pub reply: SimChannel<(NodeId, BufferName)>,
}

/// Service directory for SHRIMP RPC (the binder).
#[derive(Default)]
pub struct SrpcDirectory {
    services: Mutex<HashMap<String, SimChannel<SrpcConnect>>>,
}

impl std::fmt::Debug for SrpcDirectory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SrpcDirectory").finish_non_exhaustive()
    }
}

impl SrpcDirectory {
    /// An empty directory; share one per system.
    pub fn new() -> Arc<SrpcDirectory> {
        Arc::new(SrpcDirectory::default())
    }

    /// The listen/connect queue for a service name.
    pub fn queue(&self, service: &str) -> SimChannel<SrpcConnect> {
        self.services
            .lock()
            .entry(service.to_string())
            .or_default()
            .clone()
    }
}

/// Shared binding mechanics for both sides.
fn establish(
    vmmc: &Vmmc,
    ctx: &Ctx,
    plan: &InterfacePlan,
    peer_node: NodeId,
    peer_region: BufferName,
    local: VAddr,
) -> Result<ImportHandle, SrpcError> {
    let pages = plan.buffer_bytes.div_ceil(PAGE_SIZE);
    let peer = vmmc.import(ctx, peer_node, peer_region)?;
    vmmc.bind_au(ctx, local, &peer, 0, pages, true, false)?;
    Ok(peer)
}

fn alloc_region(
    vmmc: &Vmmc,
    ctx: &Ctx,
    plan: &InterfacePlan,
) -> Result<(VAddr, BufferName), SrpcError> {
    let bytes = plan.buffer_bytes.div_ceil(PAGE_SIZE) * PAGE_SIZE;
    let va = vmmc.proc_().alloc(bytes, CacheMode::WriteBack);
    let name = vmmc.export(ctx, va, bytes, ExportOpts::default())?;
    Ok((va, name))
}

/// The client side of a binding.
pub struct SrpcClient {
    vmmc: Vmmc,
    plan: InterfacePlan,
    buf: VAddr,
    _peer: ImportHandle,
    seq: u32,
}

impl std::fmt::Debug for SrpcClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SrpcClient")
            .field("interface", &self.plan.name)
            .finish_non_exhaustive()
    }
}

impl SrpcClient {
    /// Bind to `service` with the given interface: exchanges buffer
    /// names through the directory and wires the bidirectional
    /// automatic-update mapping.
    ///
    /// # Errors
    ///
    /// Propagates mapping failures.
    pub fn bind(
        vmmc: Vmmc,
        ctx: &Ctx,
        directory: &Arc<SrpcDirectory>,
        service: &str,
        iface: &Interface,
    ) -> Result<SrpcClient, SrpcError> {
        let plan = InterfacePlan::new(iface);
        let (buf, my_name) = alloc_region(&vmmc, ctx, &plan)?;
        let reply: SimChannel<(NodeId, BufferName)> = SimChannel::new();
        directory.queue(service).send(
            &ctx.handle(),
            SrpcConnect {
                client_node: vmmc.node_id(),
                client_region: my_name,
                reply: reply.clone(),
            },
        );
        ctx.advance(SimDur::from_us(400.0)); // out-of-band binder exchange
        let (peer_node, peer_region) = reply.recv(ctx);
        let peer = establish(&vmmc, ctx, &plan, peer_node, peer_region, buf)?;
        Ok(SrpcClient {
            vmmc,
            plan,
            buf,
            _peer: peer,
            seq: 1,
        })
    }

    /// Like [`SrpcClient::bind`], but give up at `deadline` if no
    /// server answers the connect request — the bounded path serving
    /// layers use to survive binding toward a crashed node.
    ///
    /// # Errors
    ///
    /// [`VmmcError::Timeout`] (wrapped) when the binder exchange is not
    /// answered by `deadline`; otherwise as [`SrpcClient::bind`].
    pub fn bind_deadline(
        vmmc: Vmmc,
        ctx: &Ctx,
        directory: &Arc<SrpcDirectory>,
        service: &str,
        iface: &Interface,
        deadline: SimTime,
    ) -> Result<SrpcClient, SrpcError> {
        let plan = InterfacePlan::new(iface);
        let start = ctx.now();
        let (buf, my_name) = alloc_region(&vmmc, ctx, &plan)?;
        let reply: SimChannel<(NodeId, BufferName)> = SimChannel::new();
        directory.queue(service).send(
            &ctx.handle(),
            SrpcConnect {
                client_node: vmmc.node_id(),
                client_region: my_name,
                reply: reply.clone(),
            },
        );
        ctx.advance(SimDur::from_us(400.0)); // out-of-band binder exchange
        let Some((peer_node, peer_region)) = reply.recv_deadline(ctx, deadline) else {
            return Err(SrpcError::Vmmc(VmmcError::Timeout {
                op: "srpc_bind",
                waited: ctx.now().since(start),
            }));
        };
        let peer = establish(&vmmc, ctx, &plan, peer_node, peer_region, buf)?;
        Ok(SrpcClient {
            vmmc,
            plan,
            buf,
            _peer: peer,
            seq: 1,
        })
    }

    /// The VMMC endpoint.
    pub fn vmmc(&self) -> &Vmmc {
        &self.vmmc
    }

    /// The computed marshaling plan (inspectable for tests and docs).
    pub fn plan(&self) -> &InterfacePlan {
        &self.plan
    }

    /// Call `proc_name` with the IN/INOUT arguments in declaration
    /// order; returns the OUT/INOUT results in declaration order.
    ///
    /// # Errors
    ///
    /// Argument-validation and transport errors.
    pub fn call(
        &mut self,
        ctx: &Ctx,
        proc_name: &str,
        args: &[Val],
    ) -> Result<Vec<Val>, SrpcError> {
        self.call_inner(ctx, proc_name, args, None)
    }

    /// Like [`SrpcClient::call`], but give up waiting for the reply
    /// flag at `deadline`. **A timed-out binding is poisoned** — the
    /// server may still answer the abandoned sequence number later, so
    /// the caller must drop this client and re-bind rather than issue
    /// further calls on it.
    ///
    /// # Errors
    ///
    /// [`VmmcError::Timeout`] (wrapped) when no reply lands by
    /// `deadline`; otherwise as [`SrpcClient::call`].
    pub fn call_deadline(
        &mut self,
        ctx: &Ctx,
        proc_name: &str,
        args: &[Val],
        deadline: SimTime,
    ) -> Result<Vec<Val>, SrpcError> {
        self.call_inner(ctx, proc_name, args, Some(deadline))
    }

    fn call_inner(
        &mut self,
        ctx: &Ctx,
        proc_name: &str,
        args: &[Val],
        deadline: Option<SimTime>,
    ) -> Result<Vec<Val>, SrpcError> {
        // §5 decomposition boundaries: marshal (argument stores +
        // call-flag store), wait (reply flag propagation), unmarshal.
        let obs = self.vmmc.obs();
        let msg = match &obs {
            Some(rec) => rec.alloc_msg(),
            None => shrimp_obs::MsgId::NONE,
        };
        let t0 = ctx.now();
        self.vmmc.proc_().charge_call(ctx);
        let idx = self
            .plan
            .procs
            .iter()
            .position(|p| p.def.name == proc_name)
            .ok_or_else(|| SrpcError::UnknownProc(proc_name.to_string()))?;
        let slots: Vec<ParamSlot> = self.plan.procs[idx].slots.clone();
        let expected = slots.iter().filter(|s| s.param.dir.is_in()).count();
        if args.len() != expected {
            return Err(SrpcError::ArgCount {
                expected,
                got: args.len(),
            });
        }

        // Marshal consecutively upward: IN/INOUT values, zeros into
        // OUT-only slots (keeps the run unbroken so the hardware can
        // combine args + flag into one packet), flag last.
        let p = self.vmmc.proc_();
        let mut next_in = 0usize;
        for slot in &slots {
            let bytes = if slot.param.dir.is_in() {
                let v = &args[next_in];
                next_in += 1;
                v.encode(slot.param.ty)?
            } else {
                Val::zero(slot.param.ty)
                    .encode(slot.param.ty)
                    .expect("zero matches")
            };
            p.write(ctx, self.buf.add(slot.offset), &bytes)?;
        }
        let seq = self.seq;
        self.seq += 1;
        p.write_u32(
            ctx,
            self.buf.add(self.plan.flag_offset),
            InterfacePlan::call_flag(seq, idx),
        )?;

        let t1 = ctx.now();

        // Wait for the reply flag (the server's final store, propagated
        // back into this very buffer).
        let flag_va = self.buf.add(self.plan.flag_offset);
        let want = InterfacePlan::reply_flag(seq);
        match deadline {
            None => {
                self.vmmc.wait_u32(ctx, flag_va, 1024, move |v| v == want)?;
            }
            Some(d) => {
                self.vmmc
                    .wait_u32_deadline(ctx, flag_va, 1024, d, move |v| v == want)?;
            }
        }
        let t2 = ctx.now();

        // Unmarshal OUT/INOUT results.
        let mut outs = Vec::new();
        for slot in &slots {
            if slot.param.dir.is_out() {
                let b = p.read(ctx, self.buf.add(slot.offset), slot.param.ty.wire_bytes())?;
                outs.push(Val::decode(slot.param.ty, &b));
            }
        }
        if let Some(rec) = &obs {
            let node = self.vmmc.node_index();
            for (name, start, end) in [
                ("marshal", t0, t1),
                ("wait_reply", t1, t2),
                ("unmarshal", t2, ctx.now()),
            ] {
                rec.push(shrimp_obs::SpanRec {
                    msg,
                    node,
                    layer: shrimp_obs::Layer::User,
                    name,
                    start,
                    end,
                    bytes: 0,
                });
            }
        }
        Ok(outs)
    }

    /// Close the binding (the server's serve loop returns).
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn close(&mut self, ctx: &Ctx) -> Result<(), SrpcError> {
        let seq = self.seq;
        self.vmmc.proc_().write_u32(
            ctx,
            self.buf.add(self.plan.flag_offset),
            (seq << 8) | CLOSE_MARK,
        )?;
        Ok(())
    }
}

/// Writes OUT/INOUT results from inside a procedure: every `set`
/// propagates to the client immediately through automatic update,
/// overlapping the rest of the procedure's computation.
pub struct OutWriter<'a> {
    vmmc: &'a Vmmc,
    buf: VAddr,
    slots: &'a [ParamSlot],
    written: Vec<bool>,
}

impl OutWriter<'_> {
    /// Write the OUT/INOUT parameter named `name`.
    ///
    /// # Errors
    ///
    /// Unknown name, non-out parameter, or type mismatch.
    pub fn set(&mut self, ctx: &Ctx, name: &str, v: &Val) -> Result<(), SrpcError> {
        let (i, slot) = self
            .slots
            .iter()
            .enumerate()
            .find(|(_, s)| s.param.name == name && s.param.dir.is_out())
            .ok_or_else(|| SrpcError::UnknownProc(format!("out parameter '{name}'")))?;
        let bytes = v.encode(slot.param.ty)?;
        self.vmmc
            .proc_()
            .write(ctx, self.buf.add(slot.offset), &bytes)?;
        self.written[i] = true;
        Ok(())
    }
}

/// A procedure implementation: receives the IN/INOUT values in
/// declaration order and writes results through the [`OutWriter`].
pub type SrpcHandler = Box<dyn FnMut(&Ctx, &[Val], &mut OutWriter<'_>) + Send>;

/// The server side of a binding.
pub struct SrpcServer {
    vmmc: Vmmc,
    plan: InterfacePlan,
    handlers: Vec<Option<SrpcHandler>>,
}

impl std::fmt::Debug for SrpcServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SrpcServer")
            .field("interface", &self.plan.name)
            .finish_non_exhaustive()
    }
}

/// One accepted client binding.
pub struct SrpcConn {
    buf: VAddr,
    _peer: ImportHandle,
    seq: u32,
}

impl std::fmt::Debug for SrpcConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SrpcConn").finish_non_exhaustive()
    }
}

impl SrpcServer {
    /// Create a server for the interface.
    pub fn new(vmmc: Vmmc, iface: &Interface) -> SrpcServer {
        let plan = InterfacePlan::new(iface);
        let handlers = (0..plan.procs.len()).map(|_| None).collect();
        SrpcServer {
            vmmc,
            plan,
            handlers,
        }
    }

    /// Install the handler for a procedure.
    ///
    /// # Panics
    ///
    /// Panics if the procedure is not in the interface.
    pub fn register(&mut self, proc_name: &str, handler: SrpcHandler) {
        let idx = self
            .plan
            .procs
            .iter()
            .position(|p| p.def.name == proc_name)
            .unwrap_or_else(|| panic!("no procedure '{proc_name}' in {}", self.plan.name));
        self.handlers[idx] = Some(handler);
    }

    /// The VMMC endpoint.
    pub fn vmmc(&self) -> &Vmmc {
        &self.vmmc
    }

    /// Accept one client binding through the directory.
    ///
    /// # Errors
    ///
    /// Propagates mapping failures.
    pub fn accept(
        &mut self,
        ctx: &Ctx,
        directory: &Arc<SrpcDirectory>,
        service: &str,
    ) -> Result<SrpcConn, SrpcError> {
        let req = directory.queue(service).recv(ctx);
        let (buf, my_name) = alloc_region(&self.vmmc, ctx, &self.plan)?;
        req.reply
            .send(&ctx.handle(), (self.vmmc.node_id(), my_name));
        let peer = establish(
            &self.vmmc,
            ctx,
            &self.plan,
            req.client_node,
            req.client_region,
            buf,
        )?;
        Ok(SrpcConn {
            buf,
            _peer: peer,
            seq: 1,
        })
    }

    /// Serve calls until the client closes the binding; returns the
    /// number of calls served.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    ///
    /// # Panics
    ///
    /// Panics if a call arrives for a procedure with no handler (a
    /// deployment bug, as in the original stubs).
    pub fn serve(&mut self, ctx: &Ctx, conn: &mut SrpcConn) -> Result<u64, SrpcError> {
        self.serve_fenced(ctx, conn, || false)
    }

    /// Like [`SrpcServer::serve`], but consult `fence` after each
    /// request arrives and again after its handler runs: when the fence
    /// reports `true` the loop returns **without writing the reply
    /// flag**, abandoning the connection. This is how a serving layer
    /// models process death on a crashed node — a fenced server must
    /// neither acknowledge in-flight requests nor accept new ones, so
    /// the client's bounded wait times out and it re-routes.
    ///
    /// # Errors
    ///
    /// As [`SrpcServer::serve`].
    ///
    /// # Panics
    ///
    /// As [`SrpcServer::serve`].
    pub fn serve_fenced(
        &mut self,
        ctx: &Ctx,
        conn: &mut SrpcConn,
        mut fence: impl FnMut() -> bool,
    ) -> Result<u64, SrpcError> {
        let mut served = 0u64;
        let p = self.vmmc.proc_().clone();
        loop {
            let flag_va = conn.buf.add(self.plan.flag_offset);
            let seq = conn.seq;
            let v = self.vmmc.wait_u32(ctx, flag_va, 1024, move |v| {
                (v >> 8) == seq && (v & 0xFF) != 0
            })?;
            if fence() {
                return Ok(served);
            }
            if v & 0xFF == CLOSE_MARK {
                return Ok(served);
            }
            let (_, idx) = InterfacePlan::decode_call_flag(v).expect("predicate checked");
            let obs = self.vmmc.obs();
            let dispatch_t0 = ctx.now();
            self.vmmc.proc_().charge_bookkeeping(ctx); // dispatch lookup
            let slots = self.plan.procs[idx].slots.clone();

            // Gather IN/INOUT values (read out of the communication
            // buffer; INOUTs are handed by reference in spirit — the
            // handler's writes go straight back into the buffer).
            let mut ins = Vec::new();
            for slot in &slots {
                if slot.param.dir.is_in() {
                    let b = p.read(ctx, conn.buf.add(slot.offset), slot.param.ty.wire_bytes())?;
                    ins.push(Val::decode(slot.param.ty, &b));
                }
            }
            let mut writer = OutWriter {
                vmmc: &self.vmmc,
                buf: conn.buf,
                slots: &slots,
                written: vec![false; slots.len()],
            };
            let handler = self.handlers[idx].as_mut().unwrap_or_else(|| {
                panic!(
                    "no handler for procedure '{}'",
                    self.plan.procs[idx].def.name
                )
            });
            handler(ctx, &ins, &mut writer);

            // A fence tripping mid-request (the node died while the
            // handler ran) abandons the connection unacknowledged.
            if fence() {
                return Ok(served);
            }
            // When the procedure finishes, the server simply writes the
            // flag; all written OUT values have already propagated.
            p.write_u32(ctx, flag_va, InterfacePlan::reply_flag(seq))?;
            if let Some(rec) = &obs {
                rec.push(shrimp_obs::SpanRec {
                    msg: shrimp_obs::MsgId::NONE,
                    node: self.vmmc.node_index(),
                    layer: shrimp_obs::Layer::User,
                    name: "dispatch",
                    start: dispatch_t0,
                    end: ctx.now(),
                    bytes: 0,
                });
            }
            conn.seq += 1;
            served += 1;
        }
    }
}
