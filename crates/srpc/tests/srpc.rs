//! End-to-end tests of the specialized SHRIMP RPC on the prototype.

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_core::{ShrimpSystem, SystemConfig};
use shrimp_sim::{Kernel, SimDur};
use shrimp_srpc::{parse_interface, SrpcClient, SrpcDirectory, SrpcError, SrpcServer, Val};

const CALC_IDL: &str = r"
    interface Calc {
        add(in a: i32, in b: i32, out sum: i32);
        scale(in factor: f64, inout v: array<f64, 8>);
        fill(in pattern: u32, out block: opaque[64]);
        ping(inout data: opaque[4]);
    }
";

fn run_pair(
    client_body: impl FnOnce(&shrimp_sim::Ctx, &mut SrpcClient) + Send + 'static,
) -> Arc<ShrimpSystem> {
    let kernel = Kernel::new();
    let system = ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let dir = SrpcDirectory::new();
    let iface = parse_interface(CALC_IDL).unwrap();

    {
        let vmmc = system.endpoint(1, "srpc-server");
        let dir = Arc::clone(&dir);
        let iface = iface.clone();
        kernel.spawn("srpc-server", move |ctx| {
            let mut server = SrpcServer::new(vmmc, &iface);
            server.register(
                "add",
                Box::new(|ctx, ins, out| {
                    let (Val::I32(a), Val::I32(b)) = (&ins[0], &ins[1]) else {
                        panic!("types")
                    };
                    out.set(ctx, "sum", &Val::I32(a + b)).unwrap();
                }),
            );
            server.register(
                "scale",
                Box::new(|ctx, ins, out| {
                    let (Val::F64(f), Val::F64Array(v)) = (&ins[0], &ins[1]) else {
                        panic!("types")
                    };
                    let scaled: Vec<f64> = v.iter().map(|x| x * f).collect();
                    out.set(ctx, "v", &Val::F64Array(scaled)).unwrap();
                }),
            );
            server.register(
                "fill",
                Box::new(|ctx, ins, out| {
                    let Val::U32(p) = &ins[0] else {
                        panic!("types")
                    };
                    // Model a long-running procedure: the OUT write
                    // propagates while the server keeps computing.
                    out.set(ctx, "block", &Val::Bytes(vec![*p as u8; 64]))
                        .unwrap();
                    ctx.advance(SimDur::from_us(50.0));
                }),
            );
            server.register(
                "ping",
                Box::new(|ctx, ins, out| {
                    out.set(ctx, "data", &ins[0].clone()).unwrap();
                }),
            );
            let mut conn = server.accept(ctx, &dir, "calc").unwrap();
            server.serve(ctx, &mut conn).unwrap();
        });
    }
    {
        let vmmc = system.endpoint(0, "srpc-client");
        let dir = Arc::clone(&dir);
        kernel.spawn("srpc-client", move |ctx| {
            let mut client = SrpcClient::bind(vmmc, ctx, &dir, "calc", &iface).unwrap();
            client_body(ctx, &mut client);
            client.close(ctx).unwrap();
        });
    }
    kernel.run_until_quiescent().unwrap();
    assert!(system.violations().is_empty());
    system
}

#[test]
fn scalar_in_out_call() {
    run_pair(|ctx, client| {
        let outs = client
            .call(ctx, "add", &[Val::I32(40), Val::I32(2)])
            .unwrap();
        assert_eq!(outs, vec![Val::I32(42)]);
    });
}

#[test]
fn inout_array_by_reference() {
    run_pair(|ctx, client| {
        let v: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let outs = client
            .call(ctx, "scale", &[Val::F64(2.5), Val::F64Array(v)])
            .unwrap();
        let Val::F64Array(scaled) = &outs[0] else {
            panic!("type")
        };
        assert_eq!(scaled, &(0..8).map(|i| i as f64 * 2.5).collect::<Vec<_>>());
    });
}

#[test]
fn out_block_and_repeat_calls() {
    run_pair(|ctx, client| {
        for p in [1u32, 2, 3] {
            let outs = client.call(ctx, "fill", &[Val::U32(p)]).unwrap();
            assert_eq!(outs, vec![Val::Bytes(vec![p as u8; 64])]);
        }
        // Mixed procedure sequence on the same binding.
        let outs = client
            .call(ctx, "add", &[Val::I32(-1), Val::I32(1)])
            .unwrap();
        assert_eq!(outs, vec![Val::I32(0)]);
    });
}

#[test]
fn argument_validation() {
    run_pair(|ctx, client| {
        assert!(matches!(
            client.call(ctx, "nosuch", &[]),
            Err(SrpcError::UnknownProc(_))
        ));
        assert!(matches!(
            client.call(ctx, "add", &[Val::I32(1)]),
            Err(SrpcError::ArgCount {
                expected: 2,
                got: 1
            })
        ));
        assert!(matches!(
            client.call(ctx, "add", &[Val::I32(1), Val::F64(2.0)]),
            Err(SrpcError::TypeMismatch { .. })
        ));
        // The binding still works after rejected calls.
        let outs = client
            .call(ctx, "add", &[Val::I32(2), Val::I32(3)])
            .unwrap();
        assert_eq!(outs, vec![Val::I32(5)]);
    });
}

#[test]
fn null_rpc_round_trip_near_9_5us() {
    // The paper's Figure 8 anchor: 9.5 us round trip for a null call
    // with a small INOUT argument.
    let rtt = Arc::new(Mutex::new(0.0f64));
    let r = Arc::clone(&rtt);
    run_pair(move |ctx, client| {
        // Warm up.
        for _ in 0..2 {
            client
                .call(ctx, "ping", &[Val::Bytes(vec![1, 2, 3, 4])])
                .unwrap();
        }
        let t0 = ctx.now();
        const N: u32 = 8;
        for _ in 0..N {
            client
                .call(ctx, "ping", &[Val::Bytes(vec![1, 2, 3, 4])])
                .unwrap();
        }
        *r.lock() = (ctx.now() - t0).as_us() / N as f64;
    });
    let rtt = *rtt.lock();
    assert!(
        (rtt - 9.5).abs() < 2.5,
        "specialized null RPC round trip {rtt:.2} us vs paper 9.5"
    );
}

#[test]
fn many_sequential_calls_keep_flag_discipline() {
    run_pair(|ctx, client| {
        for i in 0..300i32 {
            let outs = client
                .call(ctx, "add", &[Val::I32(i), Val::I32(i)])
                .unwrap();
            assert_eq!(outs, vec![Val::I32(2 * i)]);
        }
    });
}
