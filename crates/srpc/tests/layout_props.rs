//! Property tests for the stub generator: every generatable interface
//! yields a marshaling plan with the invariants the runtime (and the
//! hardware combining) depend on.

use proptest::prelude::*;
use shrimp_srpc::{parse_interface, InterfacePlan};

/// Generate a random but valid IDL source.
fn idl_source() -> impl Strategy<Value = String> {
    let ty = prop_oneof![
        Just("i32".to_string()),
        Just("u32".to_string()),
        Just("f64".to_string()),
        Just("bool".to_string()),
        (1usize..300).prop_map(|n| format!("opaque[{n}]")),
        (1usize..40).prop_map(|n| format!("array<f64, {n}>")),
        (1usize..40).prop_map(|n| format!("array<i32, {n}>")),
    ];
    let dir = prop_oneof![Just("in"), Just("out"), Just("inout")];
    let param = (dir, ty).prop_map(|(d, t)| (d, t));
    let proc_ = proptest::collection::vec(param, 0..6);
    proptest::collection::vec(proc_, 1..6).prop_map(|procs| {
        let mut s = String::from("interface Gen {\n");
        for (pi, params) in procs.iter().enumerate() {
            s.push_str(&format!("  proc{pi}("));
            let ps: Vec<String> = params
                .iter()
                .enumerate()
                .map(|(qi, (d, t))| format!("{d} p{qi}: {t}"))
                .collect();
            s.push_str(&ps.join(", "));
            s.push_str(");\n");
        }
        s.push('}');
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn plans_are_contiguous_and_end_at_the_flag(src in idl_source()) {
        let iface = parse_interface(&src).expect("generated source is valid");
        let plan = InterfacePlan::new(&iface);
        prop_assert_eq!(plan.buffer_bytes, plan.flag_offset + 4);
        for proc_ in &plan.procs {
            // Slots ascend with no gaps (the consecutive-fill property
            // the client stub needs for packet combining)...
            for w in proc_.slots.windows(2) {
                prop_assert_eq!(w[0].offset + w[0].param.ty.wire_bytes(), w[1].offset);
            }
            // ...and the run ends exactly at the flag word.
            if let Some(last) = proc_.slots.last() {
                prop_assert_eq!(last.offset + last.param.ty.wire_bytes(), plan.flag_offset);
            }
            // Every slot is word-aligned and inside the buffer.
            for s in &proc_.slots {
                prop_assert_eq!(s.offset % 4, 0);
                prop_assert!(s.offset + s.param.ty.wire_bytes() <= plan.flag_offset);
            }
            let total: usize = proc_.slots.iter().map(|s| s.param.ty.wire_bytes()).sum();
            prop_assert_eq!(total, proc_.args_bytes);
        }
    }

    #[test]
    fn flag_codec_round_trips(seq in 0u32..0x00FF_FFFF, idx in 0usize..200) {
        let call = InterfacePlan::call_flag(seq, idx);
        prop_assert_eq!(InterfacePlan::decode_call_flag(call), Some((seq, idx)));
        let reply = InterfacePlan::reply_flag(seq);
        prop_assert_eq!(InterfacePlan::decode_call_flag(reply), None);
        prop_assert!(call != reply);
    }

    #[test]
    fn generated_stub_mentions_every_procedure(src in idl_source()) {
        let iface = parse_interface(&src).expect("generated source is valid");
        let stub = shrimp_srpc::emit_client_stub(&iface);
        for p in &iface.procs {
            let needle = format!("pub fn {}(", p.name);
            let found = stub.contains(&needle);
            prop_assert!(found, "stub missing {}", needle);
        }
    }
}
