#![allow(clippy::type_complexity)]

//! Property tests for the mesh backplane: the invariants the VMMC layer
//! and every library protocol rely on.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use shrimp_mesh::{Backplane, LinkParams, Mesh2D, NodeId, TopologyRef};
use shrimp_sim::{Kernel, SimDur, SimTime};

#[derive(Debug, Clone)]
struct Injection {
    src: usize,
    dst: usize,
    bytes: usize,
    delay_ns: u64,
}

fn injection_strategy(nodes: usize) -> impl Strategy<Value = Injection> {
    (0..nodes, 0..nodes, 1usize..4096, 0u64..5_000).prop_map(|(src, dst, bytes, delay_ns)| {
        Injection {
            src,
            dst,
            bytes,
            delay_ns,
        }
    })
}

fn run_workload(
    topo: TopologyRef,
    injections: Vec<Injection>,
) -> Vec<(usize, usize, u64, SimTime, usize)> {
    let kernel = Kernel::new();
    let net: Arc<Backplane<u64>> =
        Backplane::new(kernel.handle(), Arc::clone(&topo), LinkParams::paragon());
    let log: Arc<Mutex<Vec<(usize, usize, u64, SimTime, usize)>>> =
        Arc::new(Mutex::new(Vec::new()));
    for node in topo.nodes() {
        let log = Arc::clone(&log);
        net.attach(node, move |d| {
            log.lock()
                .push((d.src.0, d.dst.0, d.seq, d.at, d.payload_bytes));
        });
    }
    // Stagger injections through time via scheduled events.
    let mut t = SimDur::ZERO;
    for (i, inj) in injections.iter().enumerate() {
        t += SimDur::from_ns(inj.delay_ns as f64);
        let net = Arc::clone(&net);
        let inj = inj.clone();
        kernel.schedule_in(t, move || {
            net.inject(NodeId(inj.src), NodeId(inj.dst), inj.bytes, i as u64);
        });
    }
    kernel.run_until_quiescent().unwrap();
    let stats = net.stats();
    assert_eq!(
        stats.injected,
        injections.len() as u64,
        "conservation: all injected"
    );
    assert_eq!(
        stats.delivered,
        injections.len() as u64,
        "conservation: all delivered"
    );
    let v = log.lock().clone();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every packet is delivered exactly once, to the right node, in
    /// per-pair FIFO order, and no earlier than the unloaded latency bound.
    #[test]
    fn mesh_delivery_invariants(
        injections in proptest::collection::vec(injection_strategy(4), 1..60)
    ) {
        let topo: TopologyRef = Arc::new(Mesh2D::shrimp_prototype());
        let deliveries = run_workload(topo, injections.clone());
        prop_assert_eq!(deliveries.len(), injections.len());

        // Per-pair sequence numbers strictly increase in delivery order.
        let mut last_seq: std::collections::HashMap<(usize, usize), u64> =
            std::collections::HashMap::new();
        let mut last_at: std::collections::HashMap<(usize, usize), SimTime> =
            std::collections::HashMap::new();
        for (src, dst, seq, at, _bytes) in &deliveries {
            if let Some(prev) = last_seq.get(&(*src, *dst)) {
                prop_assert_eq!(*seq, prev + 1, "FIFO violated for {}->{}", src, dst);
                prop_assert!(at >= &last_at[&(*src, *dst)]);
            } else {
                prop_assert_eq!(*seq, 0u64);
            }
            last_seq.insert((*src, *dst), *seq);
            last_at.insert((*src, *dst), *at);
        }
    }

    /// Delivery on a 4x4 mesh also respects the analytic unloaded bound
    /// when a single packet travels alone.
    #[test]
    fn single_packet_never_beats_light(
        src in 0usize..16, dst in 0usize..16, bytes in 1usize..8192
    ) {
        let topo: TopologyRef = Arc::new(Mesh2D::new(4, 4));
        let kernel = Kernel::new();
        let net: Arc<Backplane<()>> = Backplane::new(kernel.handle(), topo, LinkParams::paragon());
        net.attach(NodeId(dst), |_| {});
        let at = net.inject(NodeId(src), NodeId(dst), bytes, ());
        let bound = net.unloaded_latency(NodeId(src), NodeId(dst), bytes);
        prop_assert_eq!(at, SimTime::ZERO + bound);
        kernel.run_until_quiescent().unwrap();
    }

    /// Total payload bytes delivered equals total injected.
    #[test]
    fn payload_byte_conservation(
        injections in proptest::collection::vec(injection_strategy(4), 1..40)
    ) {
        let topo: TopologyRef = Arc::new(Mesh2D::shrimp_prototype());
        let deliveries = run_workload(topo, injections.clone());
        let injected: usize = injections.iter().map(|i| i.bytes).sum();
        let delivered: usize = deliveries.iter().map(|d| d.4).sum();
        prop_assert_eq!(injected, delivered);
    }
}
