//! The routing backplane: links, routers, injection and delivery.
//!
//! ## Fidelity
//!
//! The model is *pipelined virtual cut-through at packet granularity*, a
//! standard approximation of wormhole routing when networks are not driven
//! into saturation (the SHRIMP microbenchmarks never are — a single EISA
//! bus at 33 MB/s cannot saturate a 175 MB/s mesh link):
//!
//! * every unidirectional channel (injection, router-to-router, ejection)
//!   is a FIFO reservation timeline;
//! * a packet's head advances one router per `router_delay + wire_latency`
//!   (wire latency scaled by the topology's per-link
//!   [`Topology::wire_factor`] — dragonfly global links are longer);
//! * each channel stays busy for the packet's full serialization time, so
//!   later packets queue behind it (contention and HOL blocking on the
//!   path are modelled);
//! * what is **not** modelled is backpressure into upstream routers from a
//!   blocked head (infinite intermediate buffering). Under the traffic in
//!   this repository the difference is unobservable; the property tests
//!   check the invariants the higher layers actually rely on: per-pair
//!   FIFO ordering, minimum-latency lower bounds, and conservation.
//!
//! ## Ordering
//!
//! Routing is delegated to a [`Topology`] from `shrimp-fabric`. When the
//! topology declares [`DeliveryOrder::InOrder`] (pairwise path-invariant
//! routing over FIFO links — the iMRC's contract), the backplane *asserts*
//! per-pair FIFO on every delivery, exactly as before. When it declares
//! [`DeliveryOrder::Unordered`] (the adaptive-routing ablation), the
//! assert is replaced by a [`MeshStats::reordered`] counter — and the VMMC
//! layer refuses to build on such a fabric at all.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_fabric::{DeliveryOrder, NodeId, RouterId, TopologyRef};
use shrimp_sim::{SimDur, SimHandle, SimTime, StallWindows};

/// Physical parameters of the mesh channels.
#[derive(Debug, Clone, Copy)]
pub struct LinkParams {
    /// Bandwidth of every mesh channel, bytes/second.
    pub link_bytes_per_sec: f64,
    /// Per-router switching latency for the head of a packet.
    pub router_delay: SimDur,
    /// Wire propagation per hop.
    pub wire_latency: SimDur,
    /// Fixed cost for a NIC to start injecting a packet.
    pub injection_overhead: SimDur,
    /// Bytes of routing header prepended on the wire to every packet.
    pub header_bytes: usize,
    /// Wire size of a header-only *control* packet (remote-fetch
    /// requests and NAKs): routing header plus the descriptor words.
    pub ctl_header_bytes: usize,
    /// Per-input latency of a router's combining stage (in-network
    /// fetch-and-add / reduce — see the `collnet` module). Only paid by
    /// hardware-collective traffic.
    pub combine_delay: SimDur,
}

impl LinkParams {
    /// Parameters approximating the Intel Paragon backplane used by the
    /// prototype: 16-bit-wide channels at 175 MB/s, ~40 ns per router.
    pub fn paragon() -> LinkParams {
        LinkParams {
            link_bytes_per_sec: 175.0e6,
            router_delay: SimDur::from_ns(40.0),
            wire_latency: SimDur::from_ns(10.0),
            injection_overhead: SimDur::from_ns(50.0),
            header_bytes: 8,
            // Routing header plus a 24-byte fetch descriptor.
            ctl_header_bytes: 32,
            // An ALU pass over the combining buffer per arriving input.
            combine_delay: SimDur::from_ns(25.0),
        }
    }
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams::paragon()
    }
}

/// A packet presented to the destination sink.
#[derive(Debug)]
pub struct Delivery<P> {
    /// Injecting node.
    pub src: NodeId,
    /// Destination node (always the sink's node).
    pub dst: NodeId,
    /// Per-(src, dst) sequence number, starting at zero.
    pub seq: u64,
    /// Tail arrival time at the destination NIC.
    pub at: SimTime,
    /// Payload size in bytes, as declared at injection.
    pub payload_bytes: usize,
    /// The payload handed to [`Backplane::inject`].
    pub payload: P,
}

/// Aggregate traffic statistics for a backplane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeshStats {
    /// Packets injected so far (control packets included).
    pub injected: u64,
    /// Packets delivered so far (control packets included).
    pub delivered: u64,
    /// Total payload bytes delivered (headers excluded).
    pub payload_bytes: u64,
    /// Header-only control packets injected (remote-fetch requests and
    /// NAKs), a subset of `injected`.
    pub ctl_packets: u64,
    /// Deliveries that arrived out of per-pair injection order. Always
    /// zero on a topology declaring in-order delivery (asserted); counts
    /// overtakes under the adaptive-routing ablation.
    pub reordered: u64,
}

#[derive(Default)]
struct Channel {
    next_free: SimTime,
    /// Occupied `[start, end)` windows, sorted by start — maintained
    /// only on unordered fabrics, where the channel serves packets in
    /// *arrival* order (earliest free gap) rather than reservation
    /// order. On in-order fabrics this stays empty and reservations are
    /// pure tail-append, so their channel timelines are bit-identical
    /// to the pre-gap-fill model.
    bookings: Vec<(SimTime, SimTime)>,
}

/// Injected link faults (see `shrimp_sim::faults`). Faults only delay
/// channel reservations, never drop or reorder them, so the hardware's
/// in-order delivery contract survives every fault plan.
#[derive(Default)]
struct MeshFaults {
    /// Stall/slowdown windows applying to all channels of one router.
    per_router: std::collections::HashMap<usize, StallWindows>,
    /// Windows applying to a single channel (per-link fault plans).
    per_channel: std::collections::HashMap<usize, StallWindows>,
    /// Windows applying to every channel (bandwidth brownouts).
    global: StallWindows,
}

impl MeshFaults {
    fn is_empty(&self) -> bool {
        self.per_router.is_empty() && self.per_channel.is_empty() && self.global.is_empty()
    }
}

struct PairSeq {
    next_inject: u64,
    next_deliver: u64,
}

type Sink<P> = Arc<dyn Fn(Delivery<P>) + Send + Sync + 'static>;

/// The routing backplane, generic over the payload type `P` carried in
/// each packet (the NIC layer uses its own packet struct) and over the
/// fabric [`Topology`] it routes packets through.
///
/// # Examples
///
/// ```
/// use shrimp_sim::Kernel;
/// use shrimp_mesh::{Backplane, LinkParams, Mesh2D, NodeId};
/// use std::sync::{Arc, Mutex};
///
/// let kernel = Kernel::new();
/// let net: Arc<Backplane<u32>> = Backplane::new(
///     kernel.handle(),
///     Arc::new(Mesh2D::shrimp_prototype()),
///     LinkParams::paragon(),
/// );
/// let got = Arc::new(Mutex::new(Vec::new()));
/// let g = Arc::clone(&got);
/// net.attach(NodeId(3), move |d| g.lock().unwrap().push(d.payload));
/// net.inject(NodeId(0), NodeId(3), 64, 7);
/// kernel.run_until_quiescent()?;
/// assert_eq!(*got.lock().unwrap(), vec![7]);
/// # Ok::<(), shrimp_sim::SimError>(())
/// ```
pub struct Backplane<P> {
    topo: TopologyRef,
    params: LinkParams,
    handle: SimHandle,
    /// Channels per router: `[inject, eject, port 0, port 1, ...]`.
    ch_per_router: usize,
    /// Cached `topo.ordering() == InOrder`: gates the delivery assert.
    in_order: bool,
    /// Per-packet route salt for adaptive topologies (ignored by
    /// oblivious ones).
    salt: AtomicU64,
    /// Channel timelines, `ch_per_router` per router; switch-only routers
    /// (fat-tree leaves/spines) own unused inject/eject slots so the
    /// indexing stays uniform.
    channels: Vec<Mutex<Channel>>,
    /// Cached `topo.router_of(node)` per node — `router_of` is a pure
    /// function of the node, and caching it keeps the per-packet path
    /// free of virtual calls.
    node_router: Vec<RouterId>,
    /// Cached per-channel wire latency (`wire_latency` scaled by the
    /// topology's [`Topology::wire_factor`]), indexed like `channels`.
    /// `wire_factor` is a pure function of `(router, port)`, so the cache
    /// is exact — same values, computed once instead of per hop.
    wire: Vec<SimDur>,
    sinks: Mutex<Vec<Option<Sink<P>>>>,
    pair_seq: Mutex<std::collections::HashMap<(NodeId, NodeId), PairSeq>>,
    stats: Mutex<MeshStats>,
    faults: Mutex<MeshFaults>,
    /// Observability hook: when a recorder is attached, every injection
    /// records a `mesh/route` span from injection to tail arrival.
    obs: shrimp_obs::ObsSlot,
}

pub(crate) const CH_INJECT: usize = 0;
pub(crate) const CH_EJECT: usize = 1;

impl<P: Send + 'static> Backplane<P> {
    /// Build a backplane over `topo` with the given channel parameters.
    pub fn new(handle: SimHandle, topo: TopologyRef, params: LinkParams) -> Arc<Backplane<P>> {
        let ch_per_router = 2 + topo.ports();
        let n_channels = topo.routers() * ch_per_router;
        let n = topo.len();
        let node_router = topo.nodes().map(|node| topo.router_of(node)).collect();
        let wire = (0..n_channels)
            .map(|idx| {
                let (router, ch) = (idx / ch_per_router, idx % ch_per_router);
                if ch < 2 {
                    // Inject/eject slots: NIC-to-router stubs, factor 1.0.
                    return params.wire_latency;
                }
                let f = topo.wire_factor(router, ch - 2);
                if f == 1.0 {
                    params.wire_latency
                } else {
                    SimDur::from_ps((params.wire_latency.as_ps() as f64 * f).ceil() as u64)
                }
            })
            .collect();
        Arc::new(Backplane {
            in_order: topo.ordering() == DeliveryOrder::InOrder,
            topo,
            params,
            handle,
            ch_per_router,
            salt: AtomicU64::new(0),
            channels: (0..n_channels)
                .map(|_| Mutex::new(Channel::default()))
                .collect(),
            node_router,
            wire,
            sinks: Mutex::new(vec![None; n]),
            pair_seq: Mutex::new(std::collections::HashMap::new()),
            stats: Mutex::new(MeshStats::default()),
            faults: Mutex::new(MeshFaults::default()),
            obs: shrimp_obs::ObsSlot::new(),
        })
    }

    /// Attach (or detach) an observability recorder. While attached,
    /// [`inject_msg`](Backplane::inject_msg) records one span per packet
    /// covering its whole backplane residence.
    pub fn set_obs(&self, rec: Option<Arc<shrimp_obs::Recorder>>) {
        self.obs.set(rec);
    }

    /// The topology this backplane routes over.
    pub fn topology(&self) -> &TopologyRef {
        &self.topo
    }

    /// The channel parameters.
    pub fn params(&self) -> LinkParams {
        self.params
    }

    /// Whether this fabric guarantees per-pair in-order delivery (derived
    /// from the topology's [`Topology::ordering`] declaration). The VMMC
    /// layer requires this.
    pub fn delivers_in_order(&self) -> bool {
        self.in_order
    }

    /// Register the delivery sink for `node` (its NIC's incoming side).
    /// Replaces any previous sink.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn attach(&self, node: NodeId, sink: impl Fn(Delivery<P>) + Send + Sync + 'static) {
        let mut sinks = self.sinks.lock();
        assert!(node.0 < sinks.len(), "{node} out of range");
        sinks[node.0] = Some(Arc::new(sink));
    }

    /// Inject a packet of `payload_bytes` (plus the wire header) at the
    /// current time; computes the full path reservation and schedules the
    /// delivery event. Returns the delivery (tail-arrival) time.
    ///
    /// On an in-order topology, per-(src, dst) delivery order is
    /// guaranteed: injections are processed atomically in
    /// simulation-event order and all packets of a pair follow the same
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range, or (at delivery time) if no
    /// sink is attached to `dst`.
    pub fn inject(
        self: &Arc<Self>,
        src: NodeId,
        dst: NodeId,
        payload_bytes: usize,
        payload: P,
    ) -> SimTime {
        self.inject_msg(src, dst, payload_bytes, payload, shrimp_obs::MsgId::NONE)
    }

    /// [`inject`](Backplane::inject), attributing the packet to a causal
    /// message id for observability. The mesh span runs from injection
    /// to tail arrival on the source node's timeline.
    pub fn inject_msg(
        self: &Arc<Self>,
        src: NodeId,
        dst: NodeId,
        payload_bytes: usize,
        payload: P,
        msg: shrimp_obs::MsgId,
    ) -> SimTime {
        let wire_bytes = payload_bytes + self.params.header_bytes;
        self.inject_inner(src, dst, payload_bytes, wire_bytes, payload, msg, false)
    }

    /// Inject a header-only *control* packet (a remote-fetch request or
    /// NAK): zero payload bytes, [`LinkParams::ctl_header_bytes`] on the
    /// wire. Control packets share the data packets' channels and
    /// per-pair FIFO order.
    pub fn inject_ctl_msg(
        self: &Arc<Self>,
        src: NodeId,
        dst: NodeId,
        payload: P,
        msg: shrimp_obs::MsgId,
    ) -> SimTime {
        let wire_bytes = self.params.ctl_header_bytes;
        self.inject_inner(src, dst, 0, wire_bytes, payload, msg, true)
    }

    #[allow(clippy::too_many_arguments)]
    fn inject_inner(
        self: &Arc<Self>,
        src: NodeId,
        dst: NodeId,
        payload_bytes: usize,
        wire_bytes: usize,
        payload: P,
        msg: shrimp_obs::MsgId,
        is_ctl: bool,
    ) -> SimTime {
        let now = self.handle.now();
        let ser = SimDur::per_bytes(wire_bytes, self.params.link_bytes_per_sec);
        let salt = self.salt.fetch_add(1, Ordering::Relaxed);

        let seq = {
            let mut seqs = self.pair_seq.lock();
            let entry = seqs.entry((src, dst)).or_insert(PairSeq {
                next_inject: 0,
                next_deliver: 0,
            });
            let s = entry.next_inject;
            entry.next_inject += 1;
            s
        };

        // Reserve the whole path atomically (we hold no channel lock across
        // packets: the simulation kernel serializes injections).
        let mut head = now + self.params.injection_overhead;
        {
            // Injection channel: NIC -> local router.
            let inj = self.channel_index(self.node_router[src.0], CH_INJECT);
            let (start, _) = self.reserve(inj, head, ser);
            head = start + self.params.router_delay + self.params.wire_latency;
        }
        for hop in self.topo.route(src, dst, salt) {
            let idx = self.channel_index(hop.router, 2 + hop.port);
            let (start, _) = self.reserve(idx, head, ser);
            head = start + self.params.router_delay + self.wire[idx];
        }
        // Ejection channel: router -> destination NIC. The tail arrives
        // when the ejection channel finishes serializing the packet, which
        // under a brownout takes longer than the healthy `ser`.
        let ej = self.channel_index(self.node_router[dst.0], CH_EJECT);
        let (_, tail_arrival) = self.reserve(ej, head, ser);

        {
            let mut st = self.stats.lock();
            st.injected += 1;
            if is_ctl {
                st.ctl_packets += 1;
            }
        }

        if let Some(rec) = self.obs.get() {
            rec.push(shrimp_obs::SpanRec {
                msg,
                node: src.0,
                layer: shrimp_obs::Layer::Mesh,
                name: "route",
                start: now,
                end: tail_arrival,
                bytes: payload_bytes,
            });
        }

        let me = Arc::clone(self);
        self.handle.schedule_at(tail_arrival, move || {
            me.deliver(Delivery {
                src,
                dst,
                seq,
                at: tail_arrival,
                payload_bytes,
                payload,
            });
        });
        tail_arrival
    }

    fn deliver(&self, d: Delivery<P>) {
        {
            let mut seqs = self.pair_seq.lock();
            let entry = seqs
                .get_mut(&(d.src, d.dst))
                .expect("delivery without injection");
            if self.in_order {
                assert_eq!(
                    entry.next_deliver, d.seq,
                    "mesh ordering violated for {} -> {}",
                    d.src, d.dst
                );
                entry.next_deliver += 1;
            } else {
                // Adaptive fabric: count overtakes instead of asserting.
                if d.seq != entry.next_deliver {
                    self.stats.lock().reordered += 1;
                }
                entry.next_deliver = entry.next_deliver.max(d.seq + 1);
            }
        }
        {
            let mut st = self.stats.lock();
            st.delivered += 1;
            st.payload_bytes += d.payload_bytes as u64;
        }
        let sink = {
            let sinks = self.sinks.lock();
            sinks[d.dst.0].clone()
        };
        let sink = sink.unwrap_or_else(|| panic!("no sink attached to {}", d.dst));
        sink(d);
    }

    pub(crate) fn channel_index(&self, router: RouterId, ch: usize) -> usize {
        router * self.ch_per_router + ch
    }

    /// Wire propagation for one hop, scaled by the topology's per-link
    /// factor (precomputed per channel at build time — the common
    /// factor-1.0 path is bit-identical to the pre-trait mesh).
    pub(crate) fn hop_wire(&self, router: RouterId, port: usize) -> SimDur {
        self.wire[self.channel_index(router, 2 + port)]
    }

    pub(crate) fn reserve(&self, idx: usize, at: SimTime, ser: SimDur) -> (SimTime, SimTime) {
        let (at, ser) = self.apply_faults(idx, at, ser);
        let mut ch = self.channels[idx].lock();
        if self.in_order {
            // Tail-append: the channel serves packets in reservation
            // order, which (per pair) is injection order — the FIFO
            // discipline VMMC's in-order contract rides on.
            let start = at.max(ch.next_free);
            ch.next_free = start + ser;
            return (start, ch.next_free);
        }
        // Unordered fabric: the channel serves packets in head-arrival
        // order. Book the earliest gap that fits — a packet whose
        // shorter random route gets its head here first goes through
        // first, which is exactly how adaptive fabrics break per-pair
        // ordering.
        let mut start = at;
        let mut slot = ch.bookings.len();
        for (i, &(b_start, b_end)) in ch.bookings.iter().enumerate() {
            if start + ser <= b_start {
                slot = i;
                break;
            }
            start = start.max(b_end);
        }
        ch.bookings.insert(slot, (start, start + ser));
        ch.next_free = ch.next_free.max(start + ser);
        (start, start + ser)
    }

    /// Delay `at` past any active stall window on channel `idx` and
    /// dilate `ser` by any active brownout. Channel timelines remain
    /// FIFO because both effects only move reservations later.
    fn apply_faults(&self, idx: usize, at: SimTime, ser: SimDur) -> (SimTime, SimDur) {
        let f = self.faults.lock();
        if f.is_empty() {
            return (at, ser);
        }
        let router = idx / self.ch_per_router;
        let mut t = f.global.release(at);
        let mut factor = f.global.factor_at(t);
        if let Some(w) = f.per_router.get(&router) {
            t = w.release(t);
            factor = factor.max(w.factor_at(t));
        }
        if let Some(w) = f.per_channel.get(&idx) {
            t = w.release(t);
            factor = factor.max(w.factor_at(t));
        }
        let ser = if factor > 1.0 {
            SimDur::from_ps((ser.as_ps() as f64 * factor).ceil() as u64)
        } else {
            ser
        };
        (t, ser)
    }

    /// Fault hook: stall all channels of `node`'s router (injection,
    /// ejection, and every routing port) for `dur` starting at `start`.
    pub fn stall_node_links(&self, node: NodeId, start: SimTime, dur: SimDur) {
        self.faults
            .lock()
            .per_router
            .entry(self.topo.router_of(node))
            .or_default()
            .add_stall(start, dur);
    }

    /// Fault hook: stall the single link leaving `router` through `port`
    /// for `dur` starting at `start` — per-link fault plans for the
    /// topology-parameterized chaos workloads. Unlike
    /// [`stall_node_links`](Backplane::stall_node_links) this can target
    /// switch-only routers (fat-tree spines, say) and individual
    /// wraparound or global links.
    pub fn stall_link(&self, router: RouterId, port: usize, start: SimTime, dur: SimDur) {
        assert!(router < self.topo.routers(), "router {router} out of range");
        let idx = self.channel_index(router, 2 + port);
        self.faults
            .lock()
            .per_channel
            .entry(idx)
            .or_default()
            .add_stall(start, dur);
    }

    /// Fault hook: slow every channel's serialization by `factor` for
    /// `dur` starting at `start` (a mesh-wide bandwidth brownout).
    pub fn brownout(&self, start: SimTime, dur: SimDur, factor: f64) {
        self.faults.lock().global.add_slowdown(start, dur, factor);
    }

    /// Snapshot of traffic statistics.
    pub fn stats(&self) -> MeshStats {
        *self.stats.lock()
    }

    /// The simulation handle this backplane schedules on.
    pub(crate) fn sim(&self) -> &SimHandle {
        &self.handle
    }

    /// Unloaded tail-arrival latency for a packet of `payload_bytes` from
    /// `src` to `dst` — the analytic lower bound used by tests. Assumes
    /// factor-1.0 wires and (on non-minimal topologies) a shortest path,
    /// so it is a bound, not an exact prediction, off the reference mesh.
    pub fn unloaded_latency(&self, src: NodeId, dst: NodeId, payload_bytes: usize) -> SimDur {
        let ser = SimDur::per_bytes(
            payload_bytes + self.params.header_bytes,
            self.params.link_bytes_per_sec,
        );
        let hops = self.topo.min_distance(src, dst) as u64 + 1; // + injection hop
        self.params.injection_overhead
            + (self.params.router_delay + self.params.wire_latency) * hops
            + ser
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_fabric::{AdaptiveMesh, Mesh2D};
    use shrimp_sim::Kernel;

    fn net(kernel: &Kernel) -> Arc<Backplane<u64>> {
        Backplane::new(
            kernel.handle(),
            Arc::new(Mesh2D::shrimp_prototype()),
            LinkParams::paragon(),
        )
    }

    #[test]
    fn single_packet_latency_matches_analytic_bound() {
        let kernel = Kernel::new();
        let net = net(&kernel);
        let at = net.inject(NodeId(0), NodeId(3), 100, 1);
        let expect = net.unloaded_latency(NodeId(0), NodeId(3), 100);
        assert_eq!(at, SimTime::ZERO + expect);
    }

    #[test]
    fn deliveries_are_in_order_per_pair() {
        let kernel = Kernel::new();
        let net = net(&kernel);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        net.attach(NodeId(1), move |d| g.lock().push(d.payload));
        for i in 0..20 {
            net.inject(NodeId(0), NodeId(1), (i as usize % 7) * 100 + 4, i);
        }
        kernel.run_until_quiescent().unwrap();
        assert_eq!(*got.lock(), (0..20).collect::<Vec<u64>>());
        let st = net.stats();
        assert_eq!(st.injected, 20);
        assert_eq!(st.delivered, 20);
        assert_eq!(st.reordered, 0);
    }

    #[test]
    fn contention_serializes_on_shared_channel() {
        let kernel = Kernel::new();
        let net = net(&kernel);
        net.attach(NodeId(1), |_| {});
        // Two back-to-back packets on the same path: second tail arrives
        // at least one serialization time after the first.
        let t1 = net.inject(NodeId(0), NodeId(1), 1000, 1);
        let t2 = net.inject(NodeId(0), NodeId(1), 1000, 2);
        let ser = SimDur::per_bytes(1008, LinkParams::paragon().link_bytes_per_sec);
        assert!(t2 >= t1 + ser, "t1={t1} t2={t2} ser={ser}");
        kernel.run_until_quiescent().unwrap();
    }

    #[test]
    fn disjoint_paths_do_not_interfere() {
        let kernel = Kernel::new();
        let net = net(&kernel);
        net.attach(NodeId(1), |_| {});
        net.attach(NodeId(2), |_| {});
        let a = net.inject(NodeId(0), NodeId(1), 500, 1); // east
        let b = net.inject(NodeId(3), NodeId(2), 500, 2); // west, bottom row
                                                          // Same unloaded latency; identical because paths share no channel.
        assert_eq!(a, b);
        kernel.run_until_quiescent().unwrap();
    }

    #[test]
    #[should_panic(expected = "no sink attached")]
    fn delivery_without_sink_panics() {
        let kernel = Kernel::new();
        let net = net(&kernel);
        net.inject(NodeId(0), NodeId(1), 4, 9);
        // The panic surfaces via the event closure on the kernel thread.
        let _ = kernel.run_until_quiescent();
    }

    #[test]
    fn stalled_links_delay_but_preserve_order() {
        let kernel = Kernel::new();
        let net = net(&kernel);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        net.attach(NodeId(1), move |d| g.lock().push((d.payload, d.at)));
        // Node 0's links stall for 30 us right from t=0.
        net.stall_node_links(NodeId(0), SimTime::ZERO, SimDur::from_us(30.0));
        let healthy = net.unloaded_latency(NodeId(0), NodeId(1), 64);
        for i in 0..5 {
            net.inject(NodeId(0), NodeId(1), 64, i);
        }
        kernel.run_until_quiescent().unwrap();
        let v = got.lock().clone();
        assert_eq!(
            v.iter().map(|(p, _)| *p).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert!(
            v[0].1 >= SimTime::ZERO + SimDur::from_us(30.0),
            "first delivery {} must wait out the stall",
            v[0].1
        );
        assert!(v[0].1 < SimTime::ZERO + SimDur::from_us(31.0) + healthy);
        assert!(
            v.windows(2).all(|w| w[0].1 <= w[1].1),
            "deliveries stay time-ordered"
        );
    }

    #[test]
    fn stalled_single_link_reroutes_nothing_but_delays() {
        let kernel = Kernel::new();
        let net = net(&kernel);
        net.attach(NodeId(1), |_| {});
        net.attach(NodeId(2), |_| {});
        // Stall only node 0's east link (port 0). 0->1 rides it; 0->2
        // goes south (port 2) and must be unaffected. Inject south first
        // so it does not queue behind east on the shared inject channel.
        net.stall_link(0, 0, SimTime::ZERO, SimDur::from_us(20.0));
        let south = net.inject(NodeId(0), NodeId(2), 64, 2);
        let east = net.inject(NodeId(0), NodeId(1), 64, 1);
        assert!(east >= SimTime::ZERO + SimDur::from_us(20.0));
        assert_eq!(
            south,
            SimTime::ZERO + net.unloaded_latency(NodeId(0), NodeId(2), 64)
        );
        kernel.run_until_quiescent().unwrap();
    }

    #[test]
    fn brownout_dilates_serialization() {
        let kernel = Kernel::new();
        let slow = net(&kernel);
        slow.attach(NodeId(1), |_| {});
        slow.brownout(SimTime::ZERO, SimDur::from_us(1_000.0), 4.0);
        let t_slow = slow.inject(NodeId(0), NodeId(1), 4096, 1);
        kernel.run_until_quiescent().unwrap();

        let kernel2 = Kernel::new();
        let fast = net(&kernel2);
        fast.attach(NodeId(1), |_| {});
        let t_fast = fast.inject(NodeId(0), NodeId(1), 4096, 1);
        kernel2.run_until_quiescent().unwrap();
        assert!(
            t_slow > t_fast + (t_fast - SimTime::ZERO),
            "4x brownout should more than double the 4 KB latency: {t_slow} vs {t_fast}"
        );
    }

    #[test]
    fn header_bytes_are_charged_on_every_packet() {
        // A network configured with zero header bytes must be faster by
        // exactly the header's serialization time — per packet, on every
        // channel of the (unloaded) path: the tail arrival differs by one
        // header serialization because the tail is delayed only by the
        // last channel's finish time.
        let kernel = Kernel::new();
        let with_header = net(&kernel);
        let mut p = LinkParams::paragon();
        p.header_bytes = 0;
        let headerless: Arc<Backplane<u64>> =
            Backplane::new(kernel.handle(), Arc::new(Mesh2D::shrimp_prototype()), p);
        with_header.attach(NodeId(3), |_| {});
        headerless.attach(NodeId(3), |_| {});

        // per_bytes rounds up once per call, so compute the expected gap
        // as the difference of the two wire serializations.
        let rate = LinkParams::paragon().link_bytes_per_sec;
        let h = LinkParams::paragon().header_bytes;
        let header_ser = |payload: usize| {
            SimDur::per_bytes(payload + h, rate) - SimDur::per_bytes(payload, rate)
        };
        assert!(header_ser(256) > SimDur::ZERO);

        let t_with = with_header.inject(NodeId(0), NodeId(3), 256, 1);
        let t_without = headerless.inject(NodeId(0), NodeId(3), 256, 1);
        assert_eq!(t_with, t_without + header_ser(256));

        // And the analytic bound accounts for it identically, for any
        // payload size (headers are per packet, not per byte).
        for bytes in [0usize, 1, 64, 4096] {
            let a = with_header.unloaded_latency(NodeId(0), NodeId(3), bytes);
            let b = headerless.unloaded_latency(NodeId(0), NodeId(3), bytes);
            assert_eq!(a, b + header_ser(bytes), "payload {bytes}");
        }
        kernel.run_until_quiescent().unwrap();
    }

    #[test]
    fn self_send_uses_injection_and_ejection_only() {
        let kernel = Kernel::new();
        let net = net(&kernel);
        let got = Arc::new(Mutex::new(0u64));
        let g = Arc::clone(&got);
        net.attach(NodeId(2), move |d| *g.lock() = d.payload);
        let at = net.inject(NodeId(2), NodeId(2), 64, 42);
        assert_eq!(
            at,
            SimTime::ZERO + net.unloaded_latency(NodeId(2), NodeId(2), 64)
        );
        kernel.run_until_quiescent().unwrap();
        assert_eq!(*got.lock(), 42);
    }

    #[test]
    fn adaptive_fabric_counts_overtakes_instead_of_asserting() {
        let kernel = Kernel::new();
        let net: Arc<Backplane<u64>> = Backplane::new(
            kernel.handle(),
            Arc::new(AdaptiveMesh::new(4, 4)),
            LinkParams::paragon(),
        );
        assert!(!net.delivers_in_order());
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        net.attach(NodeId(15), move |d| g.lock().push(d.seq));
        // A burst between one pair: Valiant paths differ per packet, so
        // some overtaking is likely — and must be *counted*, not fatal.
        for i in 0..64 {
            net.inject(NodeId(0), NodeId(15), 2048, i);
        }
        kernel.run_until_quiescent().unwrap();
        let seqs = got.lock().clone();
        assert_eq!(seqs.len(), 64, "conservation still holds");
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u64>>());
        let st = net.stats();
        let overtaken = seqs.windows(2).filter(|w| w[1] < w[0]).count();
        if overtaken > 0 {
            assert!(st.reordered > 0, "overtakes must be counted");
        }
    }

    #[test]
    fn adaptive_fabric_overtakes_on_small_packets() {
        // Small packets serialize faster (~91 ns) than the Valiant
        // path-length spread (50 ns/hop, up to 2x the diameter), and
        // channels on unordered fabrics serve in head-arrival order,
        // not reservation order — so under contended mirror-partner
        // streams a later packet on a short random route overtakes an
        // earlier one stuck on a long congested one.
        let kernel = Kernel::new();
        let net: Arc<Backplane<u64>> = Backplane::new(
            kernel.handle(),
            Arc::new(AdaptiveMesh::new(4, 4)),
            LinkParams::paragon(),
        );
        let n = 16usize;
        let got = Arc::new(Mutex::new(0u64));
        for node in 0..n {
            let g = Arc::clone(&got);
            net.attach(NodeId(node), move |_| *g.lock() += 1);
        }
        for node in 0..n {
            for i in 0..8u64 {
                net.inject(NodeId(node), NodeId(n - 1 - node), 8, i);
            }
        }
        kernel.run_until_quiescent().unwrap();
        assert_eq!(*got.lock(), (n * 8) as u64, "conservation still holds");
        assert!(
            net.stats().reordered > 0,
            "contended Valiant streams must overtake"
        );
    }
}
