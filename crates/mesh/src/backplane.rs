//! The routing backplane: links, routers, injection and delivery.
//!
//! ## Fidelity
//!
//! The model is *pipelined virtual cut-through at packet granularity*, a
//! standard approximation of wormhole routing when networks are not driven
//! into saturation (the SHRIMP microbenchmarks never are — a single EISA
//! bus at 33 MB/s cannot saturate a 175 MB/s mesh link):
//!
//! * every unidirectional channel (injection, router-to-router, ejection)
//!   is a FIFO reservation timeline;
//! * a packet's head advances one router per `router_delay + wire_latency`;
//! * each channel stays busy for the packet's full serialization time, so
//!   later packets queue behind it (contention and HOL blocking on the
//!   path are modelled);
//! * what is **not** modelled is backpressure into upstream routers from a
//!   blocked head (infinite intermediate buffering). Under the traffic in
//!   this repository the difference is unobservable; the property tests
//!   check the invariants the higher layers actually rely on: per-pair
//!   FIFO ordering, minimum-latency lower bounds, and conservation.
//!
//! The iMRC preserves ordering between each sender/receiver pair; the
//! backplane asserts that invariant on every delivery.

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_sim::{SimDur, SimHandle, SimTime, StallWindows};

use crate::topology::{NodeId, Topology};

/// Physical parameters of the mesh channels.
#[derive(Debug, Clone, Copy)]
pub struct LinkParams {
    /// Bandwidth of every mesh channel, bytes/second.
    pub link_bytes_per_sec: f64,
    /// Per-router switching latency for the head of a packet.
    pub router_delay: SimDur,
    /// Wire propagation per hop.
    pub wire_latency: SimDur,
    /// Fixed cost for a NIC to start injecting a packet.
    pub injection_overhead: SimDur,
    /// Bytes of routing header prepended on the wire to every packet.
    pub header_bytes: usize,
    /// Wire size of a header-only *control* packet (remote-fetch
    /// requests and NAKs): routing header plus the descriptor words.
    pub ctl_header_bytes: usize,
}

impl LinkParams {
    /// Parameters approximating the Intel Paragon backplane used by the
    /// prototype: 16-bit-wide channels at 175 MB/s, ~40 ns per router.
    pub fn paragon() -> LinkParams {
        LinkParams {
            link_bytes_per_sec: 175.0e6,
            router_delay: SimDur::from_ns(40.0),
            wire_latency: SimDur::from_ns(10.0),
            injection_overhead: SimDur::from_ns(50.0),
            header_bytes: 8,
            // Routing header plus a 24-byte fetch descriptor.
            ctl_header_bytes: 32,
        }
    }
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams::paragon()
    }
}

/// A packet presented to the destination sink.
#[derive(Debug)]
pub struct Delivery<P> {
    /// Injecting node.
    pub src: NodeId,
    /// Destination node (always the sink's node).
    pub dst: NodeId,
    /// Per-(src, dst) sequence number, starting at zero.
    pub seq: u64,
    /// Tail arrival time at the destination NIC.
    pub at: SimTime,
    /// Payload size in bytes, as declared at injection.
    pub payload_bytes: usize,
    /// The payload handed to [`Backplane::inject`].
    pub payload: P,
}

/// Aggregate traffic statistics for a backplane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeshStats {
    /// Packets injected so far (control packets included).
    pub injected: u64,
    /// Packets delivered so far (control packets included).
    pub delivered: u64,
    /// Total payload bytes delivered (headers excluded).
    pub payload_bytes: u64,
    /// Header-only control packets injected (remote-fetch requests and
    /// NAKs), a subset of `injected`.
    pub ctl_packets: u64,
}

#[derive(Default)]
struct Channel {
    next_free: SimTime,
}

/// Injected link faults (see `shrimp_sim::faults`). Faults only delay
/// channel reservations, never drop or reorder them, so the hardware's
/// in-order delivery contract survives every fault plan.
#[derive(Default)]
struct MeshFaults {
    /// Stall/slowdown windows applying to one node's six channels.
    per_node: std::collections::HashMap<usize, StallWindows>,
    /// Windows applying to every channel (bandwidth brownouts).
    global: StallWindows,
}

impl MeshFaults {
    fn is_empty(&self) -> bool {
        self.per_node.is_empty() && self.global.is_empty()
    }
}

struct PairSeq {
    next_inject: u64,
    next_deliver: u64,
}

type Sink<P> = Arc<dyn Fn(Delivery<P>) + Send + Sync + 'static>;

/// The mesh routing backplane, generic over the payload type `P` carried
/// in each packet (the NIC layer uses its own packet struct).
///
/// # Examples
///
/// ```
/// use shrimp_sim::Kernel;
/// use shrimp_mesh::{Backplane, LinkParams, Topology, NodeId};
/// use std::sync::{Arc, Mutex};
///
/// let kernel = Kernel::new();
/// let net: Arc<Backplane<u32>> =
///     Backplane::new(kernel.handle(), Topology::shrimp_prototype(), LinkParams::paragon());
/// let got = Arc::new(Mutex::new(Vec::new()));
/// let g = Arc::clone(&got);
/// net.attach(NodeId(3), move |d| g.lock().unwrap().push(d.payload));
/// net.inject(NodeId(0), NodeId(3), 64, 7);
/// kernel.run_until_quiescent()?;
/// assert_eq!(*got.lock().unwrap(), vec![7]);
/// # Ok::<(), shrimp_sim::SimError>(())
/// ```
pub struct Backplane<P> {
    topo: Topology,
    params: LinkParams,
    handle: SimHandle,
    /// Channel timelines: per node, [inject, eject, east, west, south, north].
    channels: Vec<Mutex<Channel>>,
    sinks: Mutex<Vec<Option<Sink<P>>>>,
    pair_seq: Mutex<std::collections::HashMap<(NodeId, NodeId), PairSeq>>,
    stats: Mutex<MeshStats>,
    faults: Mutex<MeshFaults>,
    /// Observability hook: when a recorder is attached, every injection
    /// records a `mesh/route` span from injection to tail arrival.
    obs: shrimp_obs::ObsSlot,
}

const CH_PER_NODE: usize = 6;
const CH_INJECT: usize = 0;
const CH_EJECT: usize = 1;

impl<P: Send + 'static> Backplane<P> {
    /// Build a backplane over `topo` with the given channel parameters.
    pub fn new(handle: SimHandle, topo: Topology, params: LinkParams) -> Arc<Backplane<P>> {
        let n = topo.len();
        Arc::new(Backplane {
            topo,
            params,
            handle,
            channels: (0..n * CH_PER_NODE)
                .map(|_| Mutex::new(Channel::default()))
                .collect(),
            sinks: Mutex::new(vec![None; n]),
            pair_seq: Mutex::new(std::collections::HashMap::new()),
            stats: Mutex::new(MeshStats::default()),
            faults: Mutex::new(MeshFaults::default()),
            obs: shrimp_obs::ObsSlot::new(),
        })
    }

    /// Attach (or detach) an observability recorder. While attached,
    /// [`inject_msg`](Backplane::inject_msg) records one span per packet
    /// covering its whole backplane residence.
    pub fn set_obs(&self, rec: Option<Arc<shrimp_obs::Recorder>>) {
        self.obs.set(rec);
    }

    /// The topology this backplane routes over.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// The channel parameters.
    pub fn params(&self) -> LinkParams {
        self.params
    }

    /// Register the delivery sink for `node` (its NIC's incoming side).
    /// Replaces any previous sink.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn attach(&self, node: NodeId, sink: impl Fn(Delivery<P>) + Send + Sync + 'static) {
        let mut sinks = self.sinks.lock();
        assert!(node.0 < sinks.len(), "{node} out of range");
        sinks[node.0] = Some(Arc::new(sink));
    }

    /// Inject a packet of `payload_bytes` (plus the wire header) at the
    /// current time; computes the full path reservation and schedules the
    /// delivery event. Returns the delivery (tail-arrival) time.
    ///
    /// In-order delivery per (src, dst) pair is guaranteed: injections are
    /// processed atomically in simulation-event order and all packets of a
    /// pair follow the same dimension-order path.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range, or (at delivery time) if no
    /// sink is attached to `dst`.
    pub fn inject(
        self: &Arc<Self>,
        src: NodeId,
        dst: NodeId,
        payload_bytes: usize,
        payload: P,
    ) -> SimTime {
        self.inject_msg(src, dst, payload_bytes, payload, shrimp_obs::MsgId::NONE)
    }

    /// [`inject`](Backplane::inject), attributing the packet to a causal
    /// message id for observability. The mesh span runs from injection
    /// to tail arrival on the source node's timeline.
    pub fn inject_msg(
        self: &Arc<Self>,
        src: NodeId,
        dst: NodeId,
        payload_bytes: usize,
        payload: P,
        msg: shrimp_obs::MsgId,
    ) -> SimTime {
        let wire_bytes = payload_bytes + self.params.header_bytes;
        self.inject_inner(src, dst, payload_bytes, wire_bytes, payload, msg, false)
    }

    /// Inject a header-only *control* packet (a remote-fetch request or
    /// NAK): zero payload bytes, [`LinkParams::ctl_header_bytes`] on the
    /// wire. Control packets share the data packets' channels and
    /// per-pair FIFO order.
    pub fn inject_ctl_msg(
        self: &Arc<Self>,
        src: NodeId,
        dst: NodeId,
        payload: P,
        msg: shrimp_obs::MsgId,
    ) -> SimTime {
        let wire_bytes = self.params.ctl_header_bytes;
        self.inject_inner(src, dst, 0, wire_bytes, payload, msg, true)
    }

    #[allow(clippy::too_many_arguments)]
    fn inject_inner(
        self: &Arc<Self>,
        src: NodeId,
        dst: NodeId,
        payload_bytes: usize,
        wire_bytes: usize,
        payload: P,
        msg: shrimp_obs::MsgId,
        is_ctl: bool,
    ) -> SimTime {
        let now = self.handle.now();
        let ser = SimDur::per_bytes(wire_bytes, self.params.link_bytes_per_sec);

        let seq = {
            let mut seqs = self.pair_seq.lock();
            let entry = seqs.entry((src, dst)).or_insert(PairSeq {
                next_inject: 0,
                next_deliver: 0,
            });
            let s = entry.next_inject;
            entry.next_inject += 1;
            s
        };

        // Reserve the whole path atomically (we hold no channel lock across
        // packets: the simulation kernel serializes injections).
        let mut head = now + self.params.injection_overhead;
        {
            // Injection channel: NIC -> local router.
            let (start, _) = self.reserve(self.channel_index(src, CH_INJECT), head, ser);
            head = start + self.params.router_delay + self.params.wire_latency;
        }
        for (router, dir) in self.topo.route(src, dst) {
            let idx = self.channel_index(router, 2 + dir.index());
            let (start, _) = self.reserve(idx, head, ser);
            head = start + self.params.router_delay + self.params.wire_latency;
        }
        // Ejection channel: router -> destination NIC. The tail arrives
        // when the ejection channel finishes serializing the packet, which
        // under a brownout takes longer than the healthy `ser`.
        let (_, tail_arrival) = self.reserve(self.channel_index(dst, CH_EJECT), head, ser);

        {
            let mut st = self.stats.lock();
            st.injected += 1;
            if is_ctl {
                st.ctl_packets += 1;
            }
        }

        if let Some(rec) = self.obs.get() {
            rec.push(shrimp_obs::SpanRec {
                msg,
                node: src.0,
                layer: shrimp_obs::Layer::Mesh,
                name: "route",
                start: now,
                end: tail_arrival,
                bytes: payload_bytes,
            });
        }

        let me = Arc::clone(self);
        self.handle.schedule_at(tail_arrival, move || {
            me.deliver(Delivery {
                src,
                dst,
                seq,
                at: tail_arrival,
                payload_bytes,
                payload,
            });
        });
        tail_arrival
    }

    fn deliver(&self, d: Delivery<P>) {
        {
            let mut seqs = self.pair_seq.lock();
            let entry = seqs
                .get_mut(&(d.src, d.dst))
                .expect("delivery without injection");
            assert_eq!(
                entry.next_deliver, d.seq,
                "mesh ordering violated for {} -> {}",
                d.src, d.dst
            );
            entry.next_deliver += 1;
        }
        {
            let mut st = self.stats.lock();
            st.delivered += 1;
            st.payload_bytes += d.payload_bytes as u64;
        }
        let sink = {
            let sinks = self.sinks.lock();
            sinks[d.dst.0].clone()
        };
        let sink = sink.unwrap_or_else(|| panic!("no sink attached to {}", d.dst));
        sink(d);
    }

    fn channel_index(&self, node: NodeId, ch: usize) -> usize {
        node.0 * CH_PER_NODE + ch
    }

    fn reserve(&self, idx: usize, at: SimTime, ser: SimDur) -> (SimTime, SimTime) {
        let (at, ser) = self.apply_faults(idx, at, ser);
        let mut ch = self.channels[idx].lock();
        let start = at.max(ch.next_free);
        ch.next_free = start + ser;
        (start, ch.next_free)
    }

    /// Delay `at` past any active stall window on channel `idx` and
    /// dilate `ser` by any active brownout. Channel timelines remain
    /// FIFO because both effects only move reservations later.
    fn apply_faults(&self, idx: usize, at: SimTime, ser: SimDur) -> (SimTime, SimDur) {
        let f = self.faults.lock();
        if f.is_empty() {
            return (at, ser);
        }
        let node = idx / CH_PER_NODE;
        let mut t = f.global.release(at);
        let mut factor = f.global.factor_at(t);
        if let Some(w) = f.per_node.get(&node) {
            t = w.release(t);
            factor = factor.max(w.factor_at(t));
        }
        let ser = if factor > 1.0 {
            SimDur::from_ps((ser.as_ps() as f64 * factor).ceil() as u64)
        } else {
            ser
        };
        (t, ser)
    }

    /// Fault hook: stall all six channels of `node` (injection,
    /// ejection, and routing) for `dur` starting at `start`.
    pub fn stall_node_links(&self, node: NodeId, start: SimTime, dur: SimDur) {
        self.faults
            .lock()
            .per_node
            .entry(node.0)
            .or_default()
            .add_stall(start, dur);
    }

    /// Fault hook: slow every channel's serialization by `factor` for
    /// `dur` starting at `start` (a mesh-wide bandwidth brownout).
    pub fn brownout(&self, start: SimTime, dur: SimDur, factor: f64) {
        self.faults.lock().global.add_slowdown(start, dur, factor);
    }

    /// Snapshot of traffic statistics.
    pub fn stats(&self) -> MeshStats {
        *self.stats.lock()
    }

    /// Unloaded tail-arrival latency for a packet of `payload_bytes` from
    /// `src` to `dst` — the analytic lower bound used by tests.
    pub fn unloaded_latency(&self, src: NodeId, dst: NodeId, payload_bytes: usize) -> SimDur {
        let ser = SimDur::per_bytes(
            payload_bytes + self.params.header_bytes,
            self.params.link_bytes_per_sec,
        );
        let hops = self.topo.distance(src, dst) as u64 + 1; // + injection hop
        self.params.injection_overhead
            + (self.params.router_delay + self.params.wire_latency) * hops
            + ser
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_sim::Kernel;

    fn net(kernel: &Kernel) -> Arc<Backplane<u64>> {
        Backplane::new(
            kernel.handle(),
            Topology::shrimp_prototype(),
            LinkParams::paragon(),
        )
    }

    #[test]
    fn single_packet_latency_matches_analytic_bound() {
        let kernel = Kernel::new();
        let net = net(&kernel);
        let at = net.inject(NodeId(0), NodeId(3), 100, 1);
        let expect = net.unloaded_latency(NodeId(0), NodeId(3), 100);
        assert_eq!(at, SimTime::ZERO + expect);
    }

    #[test]
    fn deliveries_are_in_order_per_pair() {
        let kernel = Kernel::new();
        let net = net(&kernel);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        net.attach(NodeId(1), move |d| g.lock().push(d.payload));
        for i in 0..20 {
            net.inject(NodeId(0), NodeId(1), (i as usize % 7) * 100 + 4, i);
        }
        kernel.run_until_quiescent().unwrap();
        assert_eq!(*got.lock(), (0..20).collect::<Vec<u64>>());
        let st = net.stats();
        assert_eq!(st.injected, 20);
        assert_eq!(st.delivered, 20);
    }

    #[test]
    fn contention_serializes_on_shared_channel() {
        let kernel = Kernel::new();
        let net = net(&kernel);
        net.attach(NodeId(1), |_| {});
        // Two back-to-back packets on the same path: second tail arrives
        // at least one serialization time after the first.
        let t1 = net.inject(NodeId(0), NodeId(1), 1000, 1);
        let t2 = net.inject(NodeId(0), NodeId(1), 1000, 2);
        let ser = SimDur::per_bytes(1008, LinkParams::paragon().link_bytes_per_sec);
        assert!(t2 >= t1 + ser, "t1={t1} t2={t2} ser={ser}");
        kernel.run_until_quiescent().unwrap();
    }

    #[test]
    fn disjoint_paths_do_not_interfere() {
        let kernel = Kernel::new();
        let net = net(&kernel);
        net.attach(NodeId(1), |_| {});
        net.attach(NodeId(2), |_| {});
        let a = net.inject(NodeId(0), NodeId(1), 500, 1); // east
        let b = net.inject(NodeId(3), NodeId(2), 500, 2); // west, bottom row
                                                          // Same unloaded latency; identical because paths share no channel.
        assert_eq!(a, b);
        kernel.run_until_quiescent().unwrap();
    }

    #[test]
    #[should_panic(expected = "no sink attached")]
    fn delivery_without_sink_panics() {
        let kernel = Kernel::new();
        let net = net(&kernel);
        net.inject(NodeId(0), NodeId(1), 4, 9);
        // The panic surfaces via the event closure on the kernel thread.
        let _ = kernel.run_until_quiescent();
    }

    #[test]
    fn stalled_links_delay_but_preserve_order() {
        let kernel = Kernel::new();
        let net = net(&kernel);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        net.attach(NodeId(1), move |d| g.lock().push((d.payload, d.at)));
        // Node 0's links stall for 30 us right from t=0.
        net.stall_node_links(NodeId(0), SimTime::ZERO, SimDur::from_us(30.0));
        let healthy = net.unloaded_latency(NodeId(0), NodeId(1), 64);
        for i in 0..5 {
            net.inject(NodeId(0), NodeId(1), 64, i);
        }
        kernel.run_until_quiescent().unwrap();
        let v = got.lock().clone();
        assert_eq!(
            v.iter().map(|(p, _)| *p).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert!(
            v[0].1 >= SimTime::ZERO + SimDur::from_us(30.0),
            "first delivery {} must wait out the stall",
            v[0].1
        );
        assert!(v[0].1 < SimTime::ZERO + SimDur::from_us(31.0) + healthy);
        assert!(
            v.windows(2).all(|w| w[0].1 <= w[1].1),
            "deliveries stay time-ordered"
        );
    }

    #[test]
    fn brownout_dilates_serialization() {
        let kernel = Kernel::new();
        let slow = net(&kernel);
        slow.attach(NodeId(1), |_| {});
        slow.brownout(SimTime::ZERO, SimDur::from_us(1_000.0), 4.0);
        let t_slow = slow.inject(NodeId(0), NodeId(1), 4096, 1);
        kernel.run_until_quiescent().unwrap();

        let kernel2 = Kernel::new();
        let fast = net(&kernel2);
        fast.attach(NodeId(1), |_| {});
        let t_fast = fast.inject(NodeId(0), NodeId(1), 4096, 1);
        kernel2.run_until_quiescent().unwrap();
        assert!(
            t_slow > t_fast + (t_fast - SimTime::ZERO),
            "4x brownout should more than double the 4 KB latency: {t_slow} vs {t_fast}"
        );
    }

    #[test]
    fn header_bytes_are_charged_on_every_packet() {
        // A network configured with zero header bytes must be faster by
        // exactly the header's serialization time — per packet, on every
        // channel of the (unloaded) path: the tail arrival differs by one
        // header serialization because the tail is delayed only by the
        // last channel's finish time.
        let kernel = Kernel::new();
        let with_header = net(&kernel);
        let mut p = LinkParams::paragon();
        p.header_bytes = 0;
        let headerless: Arc<Backplane<u64>> =
            Backplane::new(kernel.handle(), Topology::shrimp_prototype(), p);
        with_header.attach(NodeId(3), |_| {});
        headerless.attach(NodeId(3), |_| {});

        // per_bytes rounds up once per call, so compute the expected gap
        // as the difference of the two wire serializations.
        let rate = LinkParams::paragon().link_bytes_per_sec;
        let h = LinkParams::paragon().header_bytes;
        let header_ser = |payload: usize| {
            SimDur::per_bytes(payload + h, rate) - SimDur::per_bytes(payload, rate)
        };
        assert!(header_ser(256) > SimDur::ZERO);

        let t_with = with_header.inject(NodeId(0), NodeId(3), 256, 1);
        let t_without = headerless.inject(NodeId(0), NodeId(3), 256, 1);
        assert_eq!(t_with, t_without + header_ser(256));

        // And the analytic bound accounts for it identically, for any
        // payload size (headers are per packet, not per byte).
        for bytes in [0usize, 1, 64, 4096] {
            let a = with_header.unloaded_latency(NodeId(0), NodeId(3), bytes);
            let b = headerless.unloaded_latency(NodeId(0), NodeId(3), bytes);
            assert_eq!(a, b + header_ser(bytes), "payload {bytes}");
        }
        kernel.run_until_quiescent().unwrap();
    }

    #[test]
    fn self_send_uses_injection_and_ejection_only() {
        let kernel = Kernel::new();
        let net = net(&kernel);
        let got = Arc::new(Mutex::new(0u64));
        let g = Arc::clone(&got);
        net.attach(NodeId(2), move |d| *g.lock() = d.payload);
        let at = net.inject(NodeId(2), NodeId(2), 64, 42);
        assert_eq!(
            at,
            SimTime::ZERO + net.unloaded_latency(NodeId(2), NodeId(2), 64)
        );
        kernel.run_until_quiescent().unwrap();
        assert_eq!(*got.lock(), 42);
    }
}
