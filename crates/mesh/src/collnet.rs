//! In-network computing: the routers' combining stage.
//!
//! Routers gain a fetch-and-add/reduce combining unit and an in-switch
//! broadcast replicator, running along a fabric-built [`SpanningTree`]
//! (the Ultracomputer lineage: move synchronization and reduction *into*
//! the switches). `shrimp-coll` offloads `barrier`/`allreduce`/`bcast`
//! here behind its `CollImpl::Hardware` selector.
//!
//! ## Timing model
//!
//! Hardware-collective traffic shares the ordinary channel reservation
//! timelines, so it contends with (and is delayed by) regular packets,
//! brownouts, and per-link stalls like any other traffic:
//!
//! * a *contribution* is injected on the node's injection channel and
//!   reaches its router one `router_delay + wire_latency` later;
//! * each router holds the combined value until its last expected input
//!   arrives, paying [`LinkParams::combine_delay`] per input
//!   ([`LinkParams`](crate::LinkParams)), then forwards one combined
//!   packet up its tree link;
//! * at the root the result turns around and is replicated down the same
//!   tree, one packet per child link, ejecting at every member router.
//!
//! Everything is computed with the same synchronous path-reservation style
//! as [`Backplane::inject`](crate::Backplane::inject): the cascade is
//! resolved (channels reserved, completion events scheduled) the moment
//! the last contribution arrives, which keeps replay bit-identical.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use shrimp_fabric::{NodeId, RouterId, SpanningTree};
use shrimp_sim::{SimDur, SimTime};

use crate::backplane::{Backplane, CH_EJECT, CH_INJECT};

/// The combining operations a router's ALU stage supports, over 8-byte
/// lanes (bit patterns of `i64`/`f64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwOp {
    /// Wrapping integer sum — the fetch-and-add combining unit. Barriers
    /// are a 1-lane fetch-and-add of 1.
    SumI64,
    /// IEEE f64 sum. Combining order is the (deterministic) tree order,
    /// which may round differently than a software ring.
    SumF64,
    /// IEEE f64 max.
    MaxF64,
}

impl HwOp {
    fn combine(self, acc: &mut Vec<u64>, input: &[u64]) {
        if acc.is_empty() {
            acc.extend_from_slice(input);
            return;
        }
        assert_eq!(acc.len(), input.len(), "hw combine lane-count mismatch");
        for (a, &b) in acc.iter_mut().zip(input) {
            *a = match self {
                HwOp::SumI64 => (*a as i64).wrapping_add(b as i64) as u64,
                HwOp::SumF64 => (f64::from_bits(*a) + f64::from_bits(b)).to_bits(),
                HwOp::MaxF64 => f64::from_bits(*a).max(f64::from_bits(b)).to_bits(),
            };
        }
    }
}

/// Completion callback for a hardware collective: fires on the member's
/// node at the virtual time the result's tail leaves its ejection
/// channel, carrying the combined (or broadcast) lanes.
pub type HwDone = Box<dyn FnOnce(SimTime, Arc<Vec<u64>>) + Send>;

struct ReduceRound {
    pending: u32,
    ready: SimTime,
    acc: Vec<u64>,
}

#[derive(Default)]
struct ReduceState {
    /// Per member node: how many contributions it has made (its current
    /// round number).
    node_round: HashMap<usize, u64>,
    /// In-flight combining buffers, per (router, round).
    rounds: HashMap<(RouterId, u64), ReduceRound>,
    /// Registered completion callbacks, per (member node, round).
    done: HashMap<(usize, u64), HwDone>,
}

/// A broadcast result parked for a receiver: when it arrived, and the
/// replicated lanes.
type BcastParked = (SimTime, Arc<Vec<u64>>);

#[derive(Default)]
struct BcastState {
    /// The root's next send round.
    send_round: u64,
    /// Per receiving node: its next receive round.
    recv_round: HashMap<usize, u64>,
    /// Results that arrived before the receiver registered.
    delivered: HashMap<(usize, u64), BcastParked>,
    /// Receivers that registered before the result arrived (registration
    /// time kept so completion never predates the receive call).
    waiting: HashMap<(usize, u64), (SimTime, HwDone)>,
}

/// A hardware collective group: the fabric spanning tree connecting a set
/// of member nodes, with per-router expected-input counts (pruned to
/// branches that actually carry members). Built by
/// [`Backplane::hw_group`]; reusable for any number of rounds.
pub struct HwGroup {
    tree: SpanningTree,
    members: Vec<NodeId>,
    /// member router -> member node id.
    node_at_router: HashMap<RouterId, usize>,
    /// Per router: member-local contribution (0/1) + active children.
    expected: Vec<u32>,
    /// Tree children pruned to subtrees containing members, with the
    /// down-port reaching each.
    active_children: Vec<Vec<(RouterId, usize)>>,
    reduce: Mutex<ReduceState>,
    bcast: Mutex<BcastState>,
}

impl std::fmt::Debug for HwGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HwGroup")
            .field("root", &self.tree.root())
            .field("members", &self.members.len())
            .finish_non_exhaustive()
    }
}

impl HwGroup {
    /// The member nodes, in the order given to [`Backplane::hw_group`].
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// The tree's root router.
    pub fn root_router(&self) -> RouterId {
        self.tree.root()
    }

    /// Worst member-to-root depth — the cascade's critical path length in
    /// tree hops.
    pub fn depth(&self) -> usize {
        self.members
            .iter()
            .map(|&m| self.tree.depth(m.0))
            .max()
            .unwrap_or(0)
    }
}

impl<P: Send + 'static> Backplane<P> {
    /// Build a hardware collective group over `members`, rooted at
    /// `root`'s router. The spanning tree covers the whole fabric but the
    /// combining schedule is pruned to branches carrying members.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty, contains duplicates, or does not
    /// contain `root`.
    pub fn hw_group(&self, members: &[NodeId], root: NodeId) -> Arc<HwGroup> {
        assert!(!members.is_empty(), "hw group needs at least one member");
        assert!(members.contains(&root), "root must be a member");
        let topo = self.topology();
        let tree = SpanningTree::build(topo.as_ref(), topo.router_of(root));
        let n = topo.routers();
        let mut node_at_router = HashMap::new();
        for &m in members {
            let r = topo.router_of(m);
            assert!(
                tree.depth(r) != usize::MAX,
                "member {m} unreachable from root"
            );
            assert!(
                node_at_router.insert(r, m.0).is_none(),
                "duplicate member {m}"
            );
        }
        // Prune: a branch is active iff its subtree contains a member.
        let mut active = vec![false; n];
        for r in tree.bottom_up() {
            if node_at_router.contains_key(&r) || active[r] {
                active[r] = true;
                if let Some((p, _)) = tree.parent(r) {
                    active[p] = true;
                }
            }
        }
        let mut expected = vec![0u32; n];
        let mut active_children = vec![Vec::new(); n];
        for r in 0..n {
            if !active[r] {
                continue;
            }
            let kids: Vec<(RouterId, usize)> = tree
                .children(r)
                .iter()
                .copied()
                .filter(|&(c, _)| active[c])
                .collect();
            expected[r] = kids.len() as u32 + u32::from(node_at_router.contains_key(&r));
            active_children[r] = kids;
        }
        Arc::new(HwGroup {
            tree,
            members: members.to_vec(),
            node_at_router,
            expected,
            active_children,
            reduce: Mutex::new(ReduceState::default()),
            bcast: Mutex::new(BcastState::default()),
        })
    }

    /// Contribute `lanes` to the group's current in-network all-reduce
    /// round under `op`. When every member has contributed, the combined
    /// result cascades back down the tree; `done` fires on this member's
    /// node at its result-ejection time.
    ///
    /// Successive rounds pipeline safely: round `k + 1` contributions can
    /// be in flight while round `k` results are still descending.
    pub fn hw_contribute(
        self: &Arc<Self>,
        g: &HwGroup,
        node: NodeId,
        lanes: &[u64],
        op: HwOp,
        done: HwDone,
    ) {
        let now = self.sim().now();
        let p = self.params();
        let topo = Arc::clone(self.topology());
        let r = topo.router_of(node);
        assert!(
            g.node_at_router.get(&r) == Some(&node.0),
            "{node} is not a member of this hw group"
        );
        let ser = SimDur::per_bytes(lanes.len() * 8 + p.header_bytes, p.link_bytes_per_sec);
        let mut st = g.reduce.lock();
        let round = {
            let c = st.node_round.entry(node.0).or_insert(0);
            let v = *c;
            *c += 1;
            v
        };
        st.done.insert((node.0, round), done);
        // Inject the contribution: NIC -> local router.
        let (start, _) = self.reserve(
            self.channel_index(r, CH_INJECT),
            now + p.injection_overhead,
            ser,
        );
        let t = start + p.router_delay + p.wire_latency;
        self.hw_ascend(g, &mut st, r, round, t, lanes.to_vec(), op, ser);
    }

    /// In-network barrier: a 1-lane fetch-and-add of 1. `done` fires when
    /// the full count returns to this member.
    pub fn hw_barrier(self: &Arc<Self>, g: &HwGroup, node: NodeId, done: HwDone) {
        self.hw_contribute(g, node, &[1], HwOp::SumI64, done);
    }

    /// Walk a combined value up the tree, reserving each up-link as the
    /// router's combining stage drains. Returns once an un-filled router
    /// absorbs the value; at the root the result turns around and
    /// descends.
    #[allow(clippy::too_many_arguments)]
    fn hw_ascend(
        self: &Arc<Self>,
        g: &HwGroup,
        st: &mut ReduceState,
        mut r: RouterId,
        round: u64,
        mut t: SimTime,
        mut lanes: Vec<u64>,
        op: HwOp,
        ser: SimDur,
    ) {
        let p = self.params();
        loop {
            let rr = st.rounds.entry((r, round)).or_insert_with(|| ReduceRound {
                pending: g.expected[r],
                ready: SimTime::ZERO,
                acc: Vec::new(),
            });
            op.combine(&mut rr.acc, &lanes);
            rr.ready = rr.ready.max(t + p.combine_delay);
            rr.pending -= 1;
            if rr.pending > 0 {
                return;
            }
            let rr = st.rounds.remove(&(r, round)).unwrap();
            if r == g.tree.root() {
                let value = Arc::new(rr.acc);
                self.hw_descend_reduce(g, st, round, rr.ready, &value, ser);
                return;
            }
            let (parent, up_port) = g.tree.parent(r).expect("non-root router has a parent");
            let (start, _) = self.reserve(self.channel_index(r, 2 + up_port), rr.ready, ser);
            t = start + p.router_delay + self.hop_wire(r, up_port);
            lanes = rr.acc;
            r = parent;
        }
    }

    /// Replicate the combined result down the tree, ejecting at every
    /// member router and firing its registered callback.
    fn hw_descend_reduce(
        self: &Arc<Self>,
        g: &HwGroup,
        st: &mut ReduceState,
        round: u64,
        t0: SimTime,
        value: &Arc<Vec<u64>>,
        ser: SimDur,
    ) {
        let p = self.params();
        let mut stack = vec![(g.tree.root(), t0)];
        while let Some((r, t)) = stack.pop() {
            if let Some(&node) = g.node_at_router.get(&r) {
                let (_, tail) = self.reserve(self.channel_index(r, CH_EJECT), t, ser);
                let done = st
                    .done
                    .remove(&(node, round))
                    .expect("hw contribution without a registered callback");
                let v = Arc::clone(value);
                self.sim().schedule_at(tail, move || done(tail, v));
            }
            for &(c, port) in &g.active_children[r] {
                let (start, _) = self.reserve(self.channel_index(r, 2 + port), t, ser);
                stack.push((c, start + p.router_delay + self.hop_wire(r, port)));
            }
        }
    }

    /// In-switch broadcast, send side: must be called on the group's root
    /// member. Replicates `lanes` down the tree to every other member and
    /// returns the root-local completion time (its NIC finished injecting
    /// the packet — the root does not wait for the leaves).
    pub fn hw_bcast_send(self: &Arc<Self>, g: &HwGroup, node: NodeId, lanes: &[u64]) -> SimTime {
        let now = self.sim().now();
        let p = self.params();
        let topo = Arc::clone(self.topology());
        let r = topo.router_of(node);
        assert_eq!(r, g.tree.root(), "hw_bcast_send requires the root member");
        let ser = SimDur::per_bytes(lanes.len() * 8 + p.header_bytes, p.link_bytes_per_sec);
        let value = Arc::new(lanes.to_vec());
        let mut st = g.bcast.lock();
        let round = st.send_round;
        st.send_round += 1;
        // Inject at the root, then replicate down.
        let (start, inject_done) = self.reserve(
            self.channel_index(r, CH_INJECT),
            now + p.injection_overhead,
            ser,
        );
        let t0 = start + p.router_delay + p.wire_latency;
        let mut stack = vec![(r, t0)];
        while let Some((at_r, t)) = stack.pop() {
            if at_r != r {
                if let Some(&dst) = g.node_at_router.get(&at_r) {
                    let (_, tail) = self.reserve(self.channel_index(at_r, CH_EJECT), t, ser);
                    match st.waiting.remove(&(dst, round)) {
                        Some((reg, done)) => {
                            let fire = tail.max(reg);
                            let v = Arc::clone(&value);
                            self.sim().schedule_at(fire, move || done(fire, v));
                        }
                        None => {
                            st.delivered
                                .insert((dst, round), (tail, Arc::clone(&value)));
                        }
                    }
                }
            }
            for &(c, port) in &g.active_children[at_r] {
                let (s, _) = self.reserve(self.channel_index(at_r, 2 + port), t, ser);
                stack.push((c, s + p.router_delay + self.hop_wire(at_r, port)));
            }
        }
        inject_done
    }

    /// In-switch broadcast, receive side: registers for the member's next
    /// broadcast round. `done` fires at the result's ejection time (or
    /// immediately if the data already arrived — it waited in the NIC).
    pub fn hw_bcast_recv(self: &Arc<Self>, g: &HwGroup, node: NodeId, done: HwDone) {
        let now = self.sim().now();
        let topo = Arc::clone(self.topology());
        let r = topo.router_of(node);
        assert!(
            g.node_at_router.get(&r) == Some(&node.0),
            "{node} is not a member of this hw group"
        );
        assert_ne!(r, g.tree.root(), "the root does not receive its own bcast");
        let mut st = g.bcast.lock();
        let round = {
            let c = st.recv_round.entry(node.0).or_insert(0);
            let v = *c;
            *c += 1;
            v
        };
        match st.delivered.remove(&(node.0, round)) {
            Some((t, v)) => {
                let fire = t.max(now);
                self.sim().schedule_at(fire, move || done(fire, v));
            }
            None => {
                st.waiting.insert((node.0, round), (now, done));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkParams;
    use shrimp_fabric::{Dragonfly, FatTree, Mesh2D, TopologyRef, Torus2D};
    use shrimp_sim::Kernel;

    fn run_allreduce(topo: TopologyRef, contribs: &[i64]) -> Vec<(usize, SimTime, i64)> {
        let n = topo.len();
        assert_eq!(contribs.len(), n);
        let kernel = Kernel::new();
        let net: Arc<Backplane<u64>> = Backplane::new(kernel.handle(), topo, LinkParams::paragon());
        let members: Vec<NodeId> = (0..n).map(NodeId).collect();
        let g = net.hw_group(&members, NodeId(0));
        let results = Arc::new(Mutex::new(Vec::new()));
        for (i, &c) in contribs.iter().enumerate() {
            let results = Arc::clone(&results);
            net.hw_contribute(
                &g,
                NodeId(i),
                &[c as u64],
                HwOp::SumI64,
                Box::new(move |at, v| {
                    results.lock().push((i, at, v[0] as i64));
                }),
            );
        }
        kernel.run_until_quiescent().unwrap();
        let mut v = results.lock().clone();
        v.sort_by_key(|&(i, _, _)| i);
        v
    }

    #[test]
    fn allreduce_sums_on_every_topology() {
        let contribs: Vec<i64> = (0..16).map(|i| i * i - 5).collect();
        let want: i64 = contribs.iter().sum();
        for topo in [
            Arc::new(Mesh2D::new(4, 4)) as TopologyRef,
            Arc::new(Torus2D::new(4, 4)) as TopologyRef,
            Arc::new(FatTree::new(16, 4, 2)) as TopologyRef,
            Arc::new(Dragonfly::new(4, 4)) as TopologyRef,
        ] {
            let name = topo.name();
            let got = run_allreduce(topo, &contribs);
            assert_eq!(got.len(), 16, "{name}");
            for &(i, at, sum) in &got {
                assert_eq!(sum, want, "{name} member {i}");
                assert!(at > SimTime::ZERO, "{name}");
            }
        }
    }

    #[test]
    fn barrier_counts_members() {
        let kernel = Kernel::new();
        let net: Arc<Backplane<u64>> = Backplane::new(
            kernel.handle(),
            Arc::new(Mesh2D::new(2, 2)),
            LinkParams::paragon(),
        );
        let members: Vec<NodeId> = (0..4).map(NodeId).collect();
        let g = net.hw_group(&members, NodeId(0));
        let counts = Arc::new(Mutex::new(Vec::new()));
        for i in 0..4 {
            let counts = Arc::clone(&counts);
            net.hw_barrier(
                &g,
                NodeId(i),
                Box::new(move |_, v| counts.lock().push(v[0])),
            );
        }
        kernel.run_until_quiescent().unwrap();
        assert_eq!(*counts.lock(), vec![4, 4, 4, 4]);
    }

    #[test]
    fn staggered_rounds_pipeline() {
        // Two rounds where members contribute at scattered times; each
        // round's sum must still be exact and completion monotone per
        // member.
        let kernel = Kernel::new();
        let net: Arc<Backplane<u64>> = Backplane::new(
            kernel.handle(),
            Arc::new(Torus2D::new(2, 2)),
            LinkParams::paragon(),
        );
        let members: Vec<NodeId> = (0..4).map(NodeId).collect();
        let g = net.hw_group(&members, NodeId(0));
        let log = Arc::new(Mutex::new(Vec::new()));
        for round in 0..2u64 {
            for i in 0..4usize {
                let net2 = Arc::clone(&net);
                let g2 = Arc::clone(&g);
                let log2 = Arc::clone(&log);
                let delay = SimDur::from_ns((round * 4000 + (i as u64) * 977) as f64);
                kernel.schedule_in(delay, move || {
                    net2.hw_contribute(
                        &g2,
                        NodeId(i),
                        &[(round + 1) * 10 + i as u64],
                        HwOp::SumI64,
                        Box::new(move |at, v| log2.lock().push((round, i, at, v[0]))),
                    );
                });
            }
        }
        kernel.run_until_quiescent().unwrap();
        let log = log.lock().clone();
        assert_eq!(log.len(), 8);
        for &(round, _, _, sum) in &log {
            let want = (0..4).map(|i| (round + 1) * 10 + i).sum::<u64>();
            assert_eq!(sum, want, "round {round}");
        }
    }

    #[test]
    fn bcast_reaches_every_member_in_either_registration_order() {
        let kernel = Kernel::new();
        let net: Arc<Backplane<u64>> = Backplane::new(
            kernel.handle(),
            Arc::new(FatTree::new(8, 4, 2)),
            LinkParams::paragon(),
        );
        let members: Vec<NodeId> = (0..8).map(NodeId).collect();
        let g = net.hw_group(&members, NodeId(0));
        let got = Arc::new(Mutex::new(Vec::new()));
        // Half the receivers register before the send, half after.
        for i in 1..4usize {
            let got = Arc::clone(&got);
            net.hw_bcast_recv(
                &g,
                NodeId(i),
                Box::new(move |at, v| {
                    got.lock().push((i, at, v.clone()));
                }),
            );
        }
        let send_done = net.hw_bcast_send(&g, NodeId(0), &[99, 7]);
        assert!(send_done > SimTime::ZERO);
        for i in 4..8usize {
            let net2 = Arc::clone(&net);
            let g2 = Arc::clone(&g);
            let got2 = Arc::clone(&got);
            kernel.schedule_in(SimDur::from_us(50.0), move || {
                net2.hw_bcast_recv(
                    &g2,
                    NodeId(i),
                    Box::new(move |at, v| {
                        got2.lock().push((i, at, v.clone()));
                    }),
                );
            });
        }
        kernel.run_until_quiescent().unwrap();
        let got = got.lock().clone();
        assert_eq!(got.len(), 7);
        for (i, at, v) in got {
            assert_eq!(*v, vec![99, 7], "member {i}");
            assert!(at > SimTime::ZERO);
        }
    }

    #[test]
    fn float_ops_combine() {
        let kernel = Kernel::new();
        let net: Arc<Backplane<u64>> = Backplane::new(
            kernel.handle(),
            Arc::new(Mesh2D::new(2, 2)),
            LinkParams::paragon(),
        );
        let members: Vec<NodeId> = (0..4).map(NodeId).collect();
        let g = net.hw_group(&members, NodeId(0));
        let out = Arc::new(Mutex::new(Vec::new()));
        for i in 0..4usize {
            let out = Arc::clone(&out);
            let lanes = [(i as f64 + 0.25).to_bits(), (10.0 - i as f64).to_bits()];
            net.hw_contribute(
                &g,
                NodeId(i),
                &lanes,
                HwOp::SumF64,
                Box::new(move |_, v| out.lock().push(v.clone())),
            );
        }
        kernel.run_until_quiescent().unwrap();
        let out = out.lock().clone();
        for v in out {
            assert!((f64::from_bits(v[0]) - 7.0).abs() < 1e-9);
            assert!((f64::from_bits(v[1]) - 34.0).abs() < 1e-9);
        }
    }

    #[test]
    fn subgroup_prunes_tree() {
        // Only two corner members on a 4x4 mesh: the cascade must still
        // complete and count exactly 2.
        let kernel = Kernel::new();
        let net: Arc<Backplane<u64>> = Backplane::new(
            kernel.handle(),
            Arc::new(Mesh2D::new(4, 4)),
            LinkParams::paragon(),
        );
        let members = [NodeId(0), NodeId(15)];
        let g = net.hw_group(&members, NodeId(0));
        let out = Arc::new(Mutex::new(Vec::new()));
        for &m in &members {
            let out = Arc::clone(&out);
            net.hw_barrier(&g, m, Box::new(move |_, v| out.lock().push(v[0])));
        }
        kernel.run_until_quiescent().unwrap();
        assert_eq!(*out.lock(), vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "not a member")]
    fn non_member_contribution_panics() {
        let kernel = Kernel::new();
        let net: Arc<Backplane<u64>> = Backplane::new(
            kernel.handle(),
            Arc::new(Mesh2D::new(2, 2)),
            LinkParams::paragon(),
        );
        let g = net.hw_group(&[NodeId(0), NodeId(1)], NodeId(0));
        net.hw_barrier(&g, NodeId(3), Box::new(|_, _| {}));
    }
}
