//! # shrimp-mesh — the Paragon-style routing backplane
//!
//! The SHRIMP prototype connects its four PC nodes with an Intel routing
//! backplane: a two-dimensional mesh of Intel Mesh Routing Chips (iMRCs)
//! — the same network used in the Paragon multicomputer — supporting
//! deadlock-free, oblivious wormhole routing and preserving the order of
//! messages from each sender to each receiver.
//!
//! This crate models that backplane for the simulation:
//!
//! * [`Topology`] — rectangular 2-D meshes with dimension-order routing;
//! * [`Backplane`] — channel reservation timelines, per-hop head latency,
//!   serialization and contention, and the per-pair in-order delivery
//!   guarantee (asserted on every delivery);
//! * [`LinkParams`] — calibrated channel parameters
//!   ([`LinkParams::paragon`] approximates the prototype's backplane).
//!
//! See the `backplane` module docs for the fidelity discussion.
//!
//! ```
//! use shrimp_sim::Kernel;
//! use shrimp_mesh::{Backplane, LinkParams, Topology, NodeId};
//!
//! let kernel = Kernel::new();
//! let net: std::sync::Arc<Backplane<&'static str>> =
//!     Backplane::new(kernel.handle(), Topology::shrimp_prototype(), LinkParams::paragon());
//! net.attach(NodeId(1), |d| assert_eq!(d.payload, "hello"));
//! net.inject(NodeId(0), NodeId(1), 5, "hello");
//! kernel.run_until_quiescent()?;
//! # Ok::<(), shrimp_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod backplane;
mod topology;

pub use backplane::{Backplane, Delivery, LinkParams, MeshStats};
pub use topology::{Coord, Direction, NodeId, Topology};
