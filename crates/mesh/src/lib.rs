//! # shrimp-mesh — the routing backplane
//!
//! The SHRIMP prototype connects its four PC nodes with an Intel routing
//! backplane: a two-dimensional mesh of Intel Mesh Routing Chips (iMRCs)
//! — the same network used in the Paragon multicomputer — supporting
//! deadlock-free, oblivious wormhole routing and preserving the order of
//! messages from each sender to each receiver.
//!
//! This crate models that backplane for the simulation, generalized over
//! the `shrimp-fabric` topology zoo:
//!
//! * [`Backplane`] — channel reservation timelines, per-hop head latency,
//!   serialization and contention, over any [`Topology`]; the per-pair
//!   in-order delivery guarantee is *derived* from the topology's
//!   declared [`DeliveryOrder`](shrimp_fabric::DeliveryOrder) (asserted
//!   on every delivery for in-order fabrics, counted as
//!   [`MeshStats::reordered`] otherwise);
//! * [`LinkParams`] — calibrated channel parameters
//!   ([`LinkParams::paragon`] approximates the prototype's backplane);
//! * the `collnet` module — in-network computing: a combining stage and
//!   in-switch broadcast in the routers, along a fabric spanning tree
//!   ([`HwGroup`], [`HwOp`], `Backplane::hw_*`).
//!
//! The topology types themselves ([`Mesh2D`], `Torus2D`, `FatTree`,
//! `Dragonfly`, `AdaptiveMesh`) live in `shrimp-fabric`; the most common
//! ones are re-exported here for convenience.
//!
//! See the `backplane` module docs for the fidelity discussion.
//!
//! ```
//! use shrimp_sim::Kernel;
//! use shrimp_mesh::{Backplane, LinkParams, Mesh2D, NodeId};
//! use std::sync::Arc;
//!
//! let kernel = Kernel::new();
//! let net: Arc<Backplane<&'static str>> = Backplane::new(
//!     kernel.handle(),
//!     Arc::new(Mesh2D::shrimp_prototype()),
//!     LinkParams::paragon(),
//! );
//! net.attach(NodeId(1), |d| assert_eq!(d.payload, "hello"));
//! net.inject(NodeId(0), NodeId(1), 5, "hello");
//! kernel.run_until_quiescent()?;
//! # Ok::<(), shrimp_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod backplane;
mod collnet;

pub use backplane::{Backplane, Delivery, LinkParams, MeshStats};
pub use collnet::{HwDone, HwGroup, HwOp};
// Re-export the fabric vocabulary so downstream crates keep a single
// import path for "the network".
pub use shrimp_fabric::{
    AdaptiveMesh, Coord, DeliveryOrder, Direction, Dragonfly, FatTree, Hop, Link, Mesh2D, NodeId,
    RouterId, SpanningTree, Topology, TopologyRef, TopologySpec, Torus2D,
};
