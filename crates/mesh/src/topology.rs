//! Mesh topology and dimension-order routing.
//!
//! The SHRIMP prototype's backplane is a two-dimensional mesh of Intel
//! Mesh Routing Chips (iMRCs) — the Paragon network — using deadlock-free,
//! oblivious wormhole routing (Dally & Seitz). Oblivious dimension-order
//! routing sends every packet first along the X dimension, then along Y;
//! because the route is a pure function of (source, destination), all
//! packets between a pair of nodes follow the same path, which (with FIFO
//! links) yields the in-order delivery guarantee the VMMC layer relies on.

use std::fmt;

/// Identifies a node (and its router) in the mesh, row-major.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A position in the mesh grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column (X dimension, routed first).
    pub x: usize,
    /// Row (Y dimension, routed second).
    pub y: usize,
}

/// One of the four mesh directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Increasing X.
    East,
    /// Decreasing X.
    West,
    /// Increasing Y.
    South,
    /// Decreasing Y.
    North,
}

impl Direction {
    /// Index 0..4, used to address per-router output links.
    pub fn index(self) -> usize {
        match self {
            Direction::East => 0,
            Direction::West => 1,
            Direction::South => 2,
            Direction::North => 3,
        }
    }
}

/// A rectangular 2-D mesh.
///
/// The 4-node SHRIMP prototype is a 2×2 mesh
/// ([`Topology::shrimp_prototype`]); the paper's planned expansion to 16
/// nodes is 4×4.
///
/// # Examples
///
/// ```
/// use shrimp_mesh::{Topology, NodeId};
/// let t = Topology::new(4, 4);
/// assert_eq!(t.len(), 16);
/// let route = t.route(NodeId(0), NodeId(15));
/// assert_eq!(route.len(), 6); // 3 east + 3 south
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    width: usize,
    height: usize,
}

impl Topology {
    /// Create a `width × height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Topology {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        Topology { width, height }
    }

    /// The 2×2 mesh of the four-node prototype system.
    pub fn shrimp_prototype() -> Topology {
        Topology::new(2, 2)
    }

    /// Mesh width (X extent).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mesh height (Y extent).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of nodes.
    pub fn len(&self) -> usize {
        self.width * self.height
    }

    /// True for a degenerate 0-node mesh (never constructible; present for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All node ids in this mesh.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.len()).map(NodeId)
    }

    /// Grid coordinate of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coord(&self, node: NodeId) -> Coord {
        assert!(node.0 < self.len(), "node {node} out of range for {self:?}");
        Coord {
            x: node.0 % self.width,
            y: node.0 / self.width,
        }
    }

    /// Node at a grid coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the mesh.
    pub fn node_at(&self, c: Coord) -> NodeId {
        assert!(
            c.x < self.width && c.y < self.height,
            "coordinate out of range"
        );
        NodeId(c.y * self.width + c.x)
    }

    /// Neighbor of `node` in `dir`, if it exists.
    pub fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let c = self.coord(node);
        let n = match dir {
            Direction::East if c.x + 1 < self.width => Coord { x: c.x + 1, y: c.y },
            Direction::West if c.x > 0 => Coord { x: c.x - 1, y: c.y },
            Direction::South if c.y + 1 < self.height => Coord { x: c.x, y: c.y + 1 },
            Direction::North if c.y > 0 => Coord { x: c.x, y: c.y - 1 },
            _ => return None,
        };
        Some(self.node_at(n))
    }

    /// The dimension-order (X then Y) route from `src` to `dst`: the
    /// sequence of `(router, direction)` hops. Empty when `src == dst`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<(NodeId, Direction)> {
        let s = self.coord(src);
        let d = self.coord(dst);
        let mut hops = Vec::with_capacity(s.x.abs_diff(d.x) + s.y.abs_diff(d.y));
        let mut cur = s;
        while cur.x != d.x {
            let dir = if cur.x < d.x {
                Direction::East
            } else {
                Direction::West
            };
            hops.push((self.node_at(cur), dir));
            cur.x = if cur.x < d.x { cur.x + 1 } else { cur.x - 1 };
        }
        while cur.y != d.y {
            let dir = if cur.y < d.y {
                Direction::South
            } else {
                Direction::North
            };
            hops.push((self.node_at(cur), dir));
            cur.y = if cur.y < d.y { cur.y + 1 } else { cur.y - 1 };
        }
        hops
    }

    /// Manhattan distance between two nodes (number of mesh links a packet
    /// traverses, excluding injection/ejection).
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let ca = self.coord(a);
        let cb = self.coord(b);
        ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_is_2x2() {
        let t = Topology::shrimp_prototype();
        assert_eq!(t.len(), 4);
        assert_eq!(t.coord(NodeId(3)), Coord { x: 1, y: 1 });
        assert_eq!(t.node_at(Coord { x: 0, y: 1 }), NodeId(2));
    }

    #[test]
    fn route_is_x_then_y() {
        let t = Topology::new(4, 4);
        let route = t.route(NodeId(1), NodeId(14)); // (1,0) -> (2,3)
        assert_eq!(
            route,
            vec![
                (NodeId(1), Direction::East),
                (NodeId(2), Direction::South),
                (NodeId(6), Direction::South),
                (NodeId(10), Direction::South),
            ]
        );
    }

    #[test]
    fn route_to_self_is_empty() {
        let t = Topology::new(3, 3);
        assert!(t.route(NodeId(4), NodeId(4)).is_empty());
        assert_eq!(t.distance(NodeId(4), NodeId(4)), 0);
    }

    #[test]
    fn route_westward_and_northward() {
        let t = Topology::new(3, 2);
        let route = t.route(NodeId(5), NodeId(0)); // (2,1) -> (0,0)
        assert_eq!(
            route,
            vec![
                (NodeId(5), Direction::West),
                (NodeId(4), Direction::West),
                (NodeId(3), Direction::North),
            ]
        );
    }

    #[test]
    fn neighbors_respect_edges() {
        let t = Topology::new(2, 2);
        assert_eq!(t.neighbor(NodeId(0), Direction::East), Some(NodeId(1)));
        assert_eq!(t.neighbor(NodeId(0), Direction::West), None);
        assert_eq!(t.neighbor(NodeId(0), Direction::South), Some(NodeId(2)));
        assert_eq!(t.neighbor(NodeId(0), Direction::North), None);
        assert_eq!(t.neighbor(NodeId(3), Direction::East), None);
        assert_eq!(t.neighbor(NodeId(3), Direction::North), Some(NodeId(1)));
    }

    #[test]
    fn route_length_equals_distance() {
        let t = Topology::new(5, 4);
        for a in t.nodes() {
            for b in t.nodes() {
                assert_eq!(t.route(a, b).len(), t.distance(a, b));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coord_of_invalid_node_panics() {
        Topology::new(2, 2).coord(NodeId(4));
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_panics() {
        Topology::new(0, 3);
    }
}
