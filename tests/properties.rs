#![allow(clippy::type_complexity)]

//! Property-based tests across the whole stack: arbitrary workloads
//! must preserve the invariants the paper's libraries promise.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use shrimp::nx::{NxConfig, NxWorld, SendVariant};
use shrimp::prelude::*;
use shrimp::sockets::{connect, listen, SocketVariant};
use shrimp::sunrpc::{XdrDecoder, XdrEncoder};

// ----------------------------------------------------------------------
// XDR: arbitrary value sequences round-trip
// ----------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum XdrVal {
    U32(u32),
    I32(i32),
    U64(u64),
    Bool(bool),
    F64(f64),
    Opaque(Vec<u8>),
    Text(String),
}

fn xdr_val() -> impl Strategy<Value = XdrVal> {
    prop_oneof![
        any::<u32>().prop_map(XdrVal::U32),
        any::<i32>().prop_map(XdrVal::I32),
        any::<u64>().prop_map(XdrVal::U64),
        any::<bool>().prop_map(XdrVal::Bool),
        // Finite doubles only: XDR round-trips NaN bit patterns but
        // equality comparison would not.
        (-1e15f64..1e15).prop_map(XdrVal::F64),
        proptest::collection::vec(any::<u8>(), 0..200).prop_map(XdrVal::Opaque),
        "[a-zA-Z0-9 _-]{0,60}".prop_map(XdrVal::Text),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn xdr_sequences_round_trip(vals in proptest::collection::vec(xdr_val(), 0..30)) {
        let mut enc = XdrEncoder::new();
        for v in &vals {
            match v {
                XdrVal::U32(x) => enc.put_u32(*x),
                XdrVal::I32(x) => enc.put_i32(*x),
                XdrVal::U64(x) => enc.put_u64(*x),
                XdrVal::Bool(x) => enc.put_bool(*x),
                XdrVal::F64(x) => enc.put_f64(*x),
                XdrVal::Opaque(x) => enc.put_opaque(x),
                XdrVal::Text(x) => enc.put_string(x),
            }
        }
        // XDR output is always whole words.
        prop_assert_eq!(enc.len() % 4, 0);
        let bytes = enc.into_bytes();
        let mut dec = XdrDecoder::new(&bytes);
        for v in &vals {
            match v {
                XdrVal::U32(x) => prop_assert_eq!(dec.get_u32().unwrap(), *x),
                XdrVal::I32(x) => prop_assert_eq!(dec.get_i32().unwrap(), *x),
                XdrVal::U64(x) => prop_assert_eq!(dec.get_u64().unwrap(), *x),
                XdrVal::Bool(x) => prop_assert_eq!(dec.get_bool().unwrap(), *x),
                XdrVal::F64(x) => prop_assert_eq!(dec.get_f64().unwrap(), *x),
                XdrVal::Opaque(x) => prop_assert_eq!(dec.get_opaque().unwrap(), x.as_slice()),
                XdrVal::Text(x) => prop_assert_eq!(dec.get_string().unwrap(), x.as_str()),
            }
        }
        prop_assert_eq!(dec.remaining(), 0);
    }
}

// ----------------------------------------------------------------------
// NX: arbitrary message schedules are delivered intact and in per-type
// order
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
struct NxMsg {
    mtype: u8,
    len: usize,
    fill: u8,
}

fn nx_msgs() -> impl Strategy<Value = Vec<NxMsg>> {
    proptest::collection::vec(
        (0u8..4, 0usize..6000, any::<u8>()).prop_map(|(mtype, len, fill)| NxMsg {
            mtype,
            len,
            fill,
        }),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn nx_random_schedules_deliver_intact(
        msgs in nx_msgs(),
        variant_pick in 0usize..3,
    ) {
        let variant = [SendVariant::AutomaticUpdate, SendVariant::DuMarshal, SendVariant::DuFromUser][variant_pick];
        let kernel = Kernel::new();
        let system = shrimp::vmmc::ShrimpSystem::build(&kernel, SystemConfig::prototype());
        let mut config = NxConfig::paper_default();
        config.send_variant = variant;
        let world = NxWorld::new(Arc::clone(&system), config, vec![0, 1]);
        let received: Arc<Mutex<Vec<(i32, Vec<u8>)>>> = Arc::new(Mutex::new(Vec::new()));

        {
            let world = Arc::clone(&world);
            let msgs = msgs.clone();
            kernel.spawn("tx", move |ctx| {
                let mut nx = world.join(ctx, 0);
                let buf = nx.vmmc().proc_().alloc(8192, CacheMode::WriteBack);
                for m in &msgs {
                    nx.vmmc().proc_().poke(buf, &vec![m.fill; m.len.max(1)]).unwrap();
                    nx.csend(ctx, m.mtype as i32, buf, m.len, 1).unwrap();
                }
                nx.flush(ctx).unwrap();
            });
        }
        {
            let world = Arc::clone(&world);
            let count = msgs.len();
            let received = Arc::clone(&received);
            kernel.spawn("rx", move |ctx| {
                let mut nx = world.join(ctx, 1);
                let buf = nx.vmmc().proc_().alloc(8192, CacheMode::WriteBack);
                for _ in 0..count {
                    let n = nx.crecv(ctx, -1, buf, 8192).unwrap();
                    let data = nx.vmmc().proc_().peek(buf, n).unwrap();
                    received.lock().push((nx.infotype(), data));
                }
            });
        }
        kernel.run_until_quiescent().unwrap();
        prop_assert!(system.violations().is_empty());

        let got = received.lock().clone();
        prop_assert_eq!(got.len(), msgs.len());
        // Per-type FIFO: within each type, contents arrive in send order.
        for t in 0u8..4 {
            let sent: Vec<&NxMsg> = msgs.iter().filter(|m| m.mtype == t).collect();
            let recv: Vec<&(i32, Vec<u8>)> = got.iter().filter(|(ty, _)| *ty == t as i32).collect();
            prop_assert_eq!(sent.len(), recv.len());
            for (m, (_, data)) in sent.iter().zip(&recv) {
                prop_assert_eq!(data.len(), m.len);
                prop_assert!(data.iter().all(|&b| b == m.fill));
            }
        }
    }
}

// ----------------------------------------------------------------------
// Sockets: arbitrary write sizes form one intact byte stream
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn socket_streams_preserve_bytes(
        chunk_sizes in proptest::collection::vec(1usize..9000, 1..10),
        recv_size in 1usize..8192,
        variant_pick in 0usize..3,
    ) {
        let variant = [SocketVariant::Au2Copy, SocketVariant::Du1Copy, SocketVariant::Du2Copy][variant_pick];
        let total: usize = chunk_sizes.iter().sum();
        let data: Vec<u8> = (0..total).map(|i| (i % 249) as u8).collect();
        let kernel = Kernel::new();
        let system = shrimp::vmmc::ShrimpSystem::build(&kernel, SystemConfig::prototype());
        let received: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));

        {
            let vmmc = system.endpoint(1, "rx");
            let eth = Arc::clone(system.ethernet());
            let received = Arc::clone(&received);
            kernel.spawn("rx", move |ctx| {
                let listener = listen(vmmc, eth, 1000);
                let mut s = listener.accept(ctx).unwrap();
                loop {
                    let chunk = s.recv(ctx, recv_size).unwrap();
                    if chunk.is_empty() {
                        break;
                    }
                    received.lock().extend(chunk);
                }
            });
        }
        {
            let vmmc = system.endpoint(0, "tx");
            let eth = Arc::clone(system.ethernet());
            let data = data.clone();
            kernel.spawn("tx", move |ctx| {
                let mut s = connect(vmmc, ctx, &eth, NodeId(1), 1000, variant).unwrap();
                let mut off = 0;
                for &n in &chunk_sizes {
                    s.send(ctx, &data[off..off + n]).unwrap();
                    off += n;
                }
                s.close(ctx).unwrap();
            });
        }
        kernel.run_until_quiescent().unwrap();
        prop_assert!(system.violations().is_empty());
        prop_assert_eq!(received.lock().clone(), data);
    }
}
