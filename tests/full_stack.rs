//! Whole-machine integration: every message-passing library running at
//! the same time on one simulated prototype, sharing nodes, NICs, buses,
//! and the mesh — as the real system's processes did.

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp::nx::{NxConfig, NxWorld};
use shrimp::prelude::*;
use shrimp::sockets::{connect, listen, SocketVariant};
use shrimp::srpc::{parse_interface, SrpcClient, SrpcDirectory, SrpcServer, Val};
use shrimp::sunrpc::{AcceptStat, RpcDirectory, StreamVariant, VrpcClient, VrpcServer};

#[test]
fn all_four_libraries_coexist() {
    let kernel = Kernel::new();
    let system = shrimp::vmmc::ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let done: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));

    // --- NX pair on nodes 0 and 1 -------------------------------------
    let world = NxWorld::new(Arc::clone(&system), NxConfig::paper_default(), vec![0, 1]);
    for rank in 0..2 {
        let world = Arc::clone(&world);
        let done = Arc::clone(&done);
        kernel.spawn(format!("nx{rank}"), move |ctx| {
            let mut nx = world.join(ctx, rank);
            let buf = nx.vmmc().proc_().alloc(4096, CacheMode::WriteBack);
            for round in 0..20 {
                if rank == 0 {
                    nx.vmmc().proc_().poke(buf, &[round as u8; 512]).unwrap();
                    nx.csend(ctx, round, buf, 512, 1).unwrap();
                } else {
                    let n = nx.crecv(ctx, round, buf, 4096).unwrap();
                    assert_eq!(n, 512);
                    assert_eq!(
                        nx.vmmc().proc_().peek(buf, 512).unwrap(),
                        vec![round as u8; 512]
                    );
                }
            }
            nx.flush(ctx).unwrap();
            if rank == 0 {
                done.lock().push("nx");
            }
        });
    }

    // --- VRPC pair: server node 2, client node 3 ----------------------
    let rdir = RpcDirectory::new();
    {
        let vmmc = system.endpoint(2, "vrpc-server");
        let rdir = Arc::clone(&rdir);
        kernel.spawn("vrpc-server", move |ctx| {
            let mut server = VrpcServer::new(vmmc, 77, 1);
            server.register(
                1,
                Box::new(|_ctx, args, out| {
                    let Ok(v) = args.get_i32() else {
                        return AcceptStat::GarbageArgs;
                    };
                    out.put_i32(v * 2);
                    AcceptStat::Success
                }),
            );
            let mut conn = server.accept(ctx, &rdir).unwrap();
            server.serve(ctx, &mut conn).unwrap();
        });
    }
    {
        let vmmc = system.endpoint(3, "vrpc-client");
        let rdir = Arc::clone(&rdir);
        let done = Arc::clone(&done);
        kernel.spawn("vrpc-client", move |ctx| {
            let mut c =
                VrpcClient::bind(vmmc, ctx, &rdir, 77, 1, StreamVariant::AutomaticUpdate).unwrap();
            for i in 0..15 {
                assert_eq!(
                    c.call(ctx, 1, move |e| e.put_i32(i), |d| d.get_i32())
                        .unwrap(),
                    2 * i
                );
            }
            c.close(ctx).unwrap();
            done.lock().push("vrpc");
        });
    }

    // --- Sockets: node 1 serves, node 2 connects (cross traffic) ------
    {
        let vmmc = system.endpoint(1, "sock-server");
        let eth = Arc::clone(system.ethernet());
        kernel.spawn("sock-server", move |ctx| {
            let listener = listen(vmmc, eth, 4242);
            let mut s = listener.accept(ctx).unwrap();
            let data = s.recv_exact(ctx, 20_000).unwrap();
            s.send(ctx, &data[..100]).unwrap();
            s.close(ctx).unwrap();
        });
    }
    {
        let vmmc = system.endpoint(2, "sock-client");
        let eth = Arc::clone(system.ethernet());
        let done = Arc::clone(&done);
        kernel.spawn("sock-client", move |ctx| {
            let mut s = connect(vmmc, ctx, &eth, NodeId(1), 4242, SocketVariant::Du1Copy).unwrap();
            let data: Vec<u8> = (0..20_000).map(|i| (i % 251) as u8).collect();
            s.send(ctx, &data).unwrap();
            assert_eq!(s.recv_exact(ctx, 100).unwrap(), &data[..100]);
            s.close(ctx).unwrap();
            done.lock().push("sockets");
        });
    }

    // --- Specialized RPC: server node 0, client node 3 -----------------
    let sdir = SrpcDirectory::new();
    let iface = parse_interface("interface Inc { inc(inout v: u32); }").unwrap();
    {
        let vmmc = system.endpoint(0, "srpc-server");
        let sdir = Arc::clone(&sdir);
        let iface = iface.clone();
        kernel.spawn("srpc-server", move |ctx| {
            let mut server = SrpcServer::new(vmmc, &iface);
            server.register(
                "inc",
                Box::new(|ctx, ins, out| {
                    let Val::U32(v) = ins[0] else { panic!("type") };
                    out.set(ctx, "v", &Val::U32(v + 1)).unwrap();
                }),
            );
            let mut conn = server.accept(ctx, &sdir, "inc").unwrap();
            server.serve(ctx, &mut conn).unwrap();
        });
    }
    {
        let vmmc = system.endpoint(3, "srpc-client");
        let sdir = Arc::clone(&sdir);
        let done = Arc::clone(&done);
        kernel.spawn("srpc-client", move |ctx| {
            let mut c = SrpcClient::bind(vmmc, ctx, &sdir, "inc", &iface).unwrap();
            let mut v = 0u32;
            for _ in 0..25 {
                let outs = c.call(ctx, "inc", &[Val::U32(v)]).unwrap();
                let Val::U32(next) = outs[0] else {
                    panic!("type")
                };
                v = next;
            }
            assert_eq!(v, 25);
            c.close(ctx).unwrap();
            done.lock().push("srpc");
        });
    }

    kernel
        .run_until_quiescent()
        .expect("full-stack simulation failed");
    assert!(system.violations().is_empty(), "protection violations");
    let mut names = done.lock().clone();
    names.sort();
    assert_eq!(names, vec!["nx", "sockets", "srpc", "vrpc"]);
}

#[test]
fn whole_system_runs_are_deterministic() {
    fn run_once() -> (u64, Vec<u64>) {
        let kernel = Kernel::new();
        let system = shrimp::vmmc::ShrimpSystem::build(&kernel, SystemConfig::prototype());
        let world = NxWorld::new(
            Arc::clone(&system),
            NxConfig::paper_default(),
            vec![0, 1, 2, 3],
        );
        let stamps: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        for rank in 0..4 {
            let world = Arc::clone(&world);
            let stamps = Arc::clone(&stamps);
            kernel.spawn(format!("rank{rank}"), move |ctx| {
                let mut nx = world.join(ctx, rank);
                let buf = nx.vmmc().proc_().alloc(8192, CacheMode::WriteBack);
                let n = nx.numnodes();
                for round in 0..5 {
                    let dst = (rank + 1 + round as usize) % n;
                    nx.csend(ctx, round, buf, 700 * (round as usize + 1), dst)
                        .unwrap();
                    nx.crecv(ctx, round, buf, 8192).unwrap();
                }
                nx.gsync(ctx).unwrap();
                nx.flush(ctx).unwrap();
                stamps.lock().push(ctx.now().as_ps());
            });
        }
        let end = kernel.run_until_quiescent().unwrap();
        let mut v = stamps.lock().clone();
        v.sort_unstable();
        (end.as_ps(), v)
    }
    assert_eq!(run_once(), run_once());
}
