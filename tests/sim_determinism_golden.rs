//! Golden-trace determinism guard for the simulation engine.
//!
//! Hashes the kernel's full scheduled-item trace (every executed event
//! and process resume, with its virtual timestamp) over a mixed
//! workload that crosses the VMMC, NX, and collective layers, then
//! checks the hash against a committed golden value.
//!
//! This is the pre/post guard for engine work (zero-copy payload path,
//! event-kernel fast paths): any change that shifts a single virtual
//! timestamp, reorders two same-time items, or adds/drops a scheduled
//! item changes the hash and fails here. The golden constant was
//! recorded on the pre-overhaul engine, so passing proves bit-identical
//! virtual behaviour across the change. Wall-clock-only changes keep it
//! green by construction.

use std::sync::Arc;

use parking_lot::Mutex;
use shrimp::coll::{CollConfig, CollWorld, ReduceOp};
use shrimp::prelude::*;
use shrimp::sim::TraceEvent;
use shrimp::vmmc::{BufferName, ExportOpts};

/// Trace hash of the mixed workload, recorded on the pre-overhaul
/// engine (PR 2 head). Do not update this constant for engine-side
/// changes — a mismatch there is a determinism regression. Update it
/// (in its own commit, with an explanation) only when a *modelled*
/// behaviour legitimately changes: costs, protocol structure, workload.
const GOLDEN_TRACE_HASH: u64 = 0x7d86_e013_e88f_23dc;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

fn install_trace_hash(kernel: &Kernel) -> Arc<Mutex<u64>> {
    let hash = Arc::new(Mutex::new(FNV_OFFSET));
    let h = Arc::clone(&hash);
    kernel.set_tracer(move |ev| {
        let mut acc = h.lock();
        match ev {
            TraceEvent::Event { at } => {
                fnv1a(&mut acc, &[1]);
                fnv1a(&mut acc, &at.as_ps().to_le_bytes());
            }
            TraceEvent::Resume { at, process } => {
                fnv1a(&mut acc, &[2]);
                fnv1a(&mut acc, &at.as_ps().to_le_bytes());
                fnv1a(&mut acc, process.as_bytes());
            }
        }
    });
    hash
}

/// Phase A: deliberate update, notifications, and automatic update
/// between two endpoint pairs on the 4-node prototype.
fn run_vmmc_phase() -> u64 {
    let kernel = Kernel::new();
    let hash = install_trace_hash(&kernel);
    let system = shrimp::vmmc::ShrimpSystem::build(&kernel, SystemConfig::prototype());

    let names: SimChannel<BufferName> = SimChannel::new();

    // Receiver on node 1: exports a 2-page buffer with a notification
    // handler, then waits for the sender's flag word.
    {
        let vmmc = system.endpoint(1, "rx");
        let rx_names = names.clone();
        kernel.spawn("rx", move |ctx| {
            let buf = vmmc.proc_().alloc(2 * 4096, CacheMode::WriteBack);
            let notified = Arc::new(Mutex::new(0u32));
            let n2 = Arc::clone(&notified);
            let name = vmmc
                .export(
                    ctx,
                    buf,
                    2 * 4096,
                    ExportOpts {
                        handler: Some(Box::new(move |_ctx, _ev| *n2.lock() += 1)),
                        ..Default::default()
                    },
                )
                .unwrap();
            rx_names.send(&ctx.handle(), name);
            // Flag word at offset 4096+512: last word the sender writes.
            let v = vmmc
                .wait_u32(ctx, buf.add(4096 + 512), 16, |v| v == 0xfeed_beef)
                .unwrap();
            assert_eq!(v, 0xfeed_beef);
            vmmc.wait_notification(ctx);
            assert!(*notified.lock() >= 1);
        });
    }

    // Sender on node 0: imports, streams a deliberate update, then an
    // automatic-update binding with combining, then the notify flag.
    {
        let vmmc = system.endpoint(0, "tx");
        let tx_names = names.clone();
        kernel.spawn("tx", move |ctx| {
            let name = tx_names.recv(ctx);
            let handle = vmmc.import(ctx, NodeId(1), name).unwrap();
            let src = vmmc.proc_().alloc(2 * 4096, CacheMode::WriteBack);
            let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
            vmmc.proc_().poke(src, &payload).unwrap();
            vmmc.send(ctx, src, &handle, 0, 4096).unwrap();

            // One page of automatic update with combining.
            let au_va = vmmc.proc_().alloc(4096, CacheMode::WriteBack);
            let binding = vmmc
                .bind_au(ctx, au_va, &handle, 4096, 1, true, false)
                .unwrap();
            let p = vmmc.proc_().clone();
            p.write(ctx, au_va, &[0xA5u8; 256]).unwrap();
            p.write(ctx, au_va.add(256), &[0x5Au8; 256]).unwrap();
            vmmc.unbind_au(ctx, binding);

            // Notify flag via deliberate update (sender interrupt).
            p.poke(src, &0xfeed_beefu32.to_le_bytes()).unwrap();
            vmmc.send_notify(ctx, src, &handle, 4096 + 512, 4).unwrap();
        });
    }

    kernel.run_until_quiescent().unwrap();
    assert!(system.violations().is_empty());
    let v = *hash.lock();
    v
}

/// Phase B: collective layer on all four prototype nodes — barrier plus
/// two allreduce rounds at two sizes (both algorithms get exercised by
/// the size selector's cutoff).
fn run_coll_phase() -> u64 {
    let kernel = Kernel::new();
    let hash = install_trace_hash(&kernel);
    let system = shrimp::vmmc::ShrimpSystem::build(&kernel, SystemConfig::prototype());
    let n = system.len();
    let world = CollWorld::new(Arc::clone(&system), CollConfig::default(), (0..n).collect());

    for rank in 0..n {
        let world = Arc::clone(&world);
        kernel.spawn(format!("rank{rank}"), move |ctx| {
            let mut comm = world.join(ctx, rank);
            let p = comm.vmmc().proc_().clone();
            let buf = p.alloc(8192, CacheMode::WriteBack);
            comm.barrier(ctx).unwrap();
            for &bytes in &[64usize, 8192] {
                let count = bytes / 8;
                let lanes: Vec<u8> = (0..count)
                    .flat_map(|i| ((rank + i) as i64).to_le_bytes())
                    .collect();
                for _ in 0..2 {
                    p.poke(buf, &lanes).unwrap();
                    comm.allreduce(ctx, buf, count, ReduceOp::SumI64).unwrap();
                }
            }
            comm.barrier(ctx).unwrap();
        });
    }
    kernel.run_until_quiescent().unwrap();
    assert!(system.violations().is_empty());
    let v = *hash.lock();
    v
}

fn mixed_workload_trace_hash() -> u64 {
    let mut h = FNV_OFFSET;
    fnv1a(&mut h, &run_vmmc_phase().to_le_bytes());
    fnv1a(&mut h, &run_coll_phase().to_le_bytes());
    h
}

#[test]
fn sim_determinism_golden() {
    let first = mixed_workload_trace_hash();
    let second = mixed_workload_trace_hash();
    assert_eq!(
        first, second,
        "same-build replay must produce an identical scheduled-item trace"
    );
    assert_eq!(
        first, GOLDEN_TRACE_HASH,
        "trace hash diverged from the committed golden value: virtual \
         timestamps or event order changed (hash {first:#018x})"
    );
}

/// Observability must be passive: running the same workload with a
/// `shrimp-obs` recorder installed (spans recorded at every layer)
/// must leave every scheduled item and virtual timestamp untouched —
/// the same golden hash — while actually collecting spans.
#[test]
fn sim_determinism_golden_with_recorder_installed() {
    let rec = shrimp::obs::Recorder::new();
    let hash = {
        let _g = rec.install();
        mixed_workload_trace_hash()
    };
    assert_eq!(
        hash, GOLDEN_TRACE_HASH,
        "an installed recorder perturbed the virtual trace (hash {hash:#018x})"
    );
    assert!(
        !rec.is_empty(),
        "the recorder must have observed the workload's spans"
    );
    let spans = rec.spans();
    assert!(
        shrimp::obs::breakdown::message_ids(&spans)
            .iter()
            .all(|&m| shrimp::obs::breakdown(&spans, m).unwrap().is_conserved()),
        "every observed message must conserve its latency"
    );
}
